"""Semantic analysis: name resolution, type checking, slot allocation.

`analyze` returns a :class:`World` (class/field/method tables) and
rewrites the AST in place/functionally:

- every expression node gets a `type`,
- `Name` nodes get a `binding` (local slot / instance field / static
  field),
- static field accesses become bound `Name` nodes, `array.length`
  becomes `ArrayLength`,
- calls get `resolved` targets (native / static / virtual),
- implicit int->float conversions become explicit `Cast` nodes,
- locals get frame slots; each method learns its `max_slots`.

The type system is Java-flavoured: `boolean` is distinct from `int`;
`int` widens implicitly to `float`; `null` is assignable to any
reference type; subclasses widen to superclasses.
"""

from __future__ import annotations

from . import ast
from .ast import element_type, is_array
from .diagnostics import SemanticError

# Native method signatures for class Sys: name -> (param types, return).
NATIVE_SIGNATURES: dict[str, tuple[tuple[str, ...], str]] = {
    "print": (("int",), "void"),
    "printf": (("float",), "void"),
    "prints": (("String",), "void"),
    "abs": (("int",), "int"),
    "min": (("int", "int"), "int"),
    "max": (("int", "int"), "int"),
    "isqrt": (("int",), "int"),
    "fsqrt": (("float",), "float"),
    "fsin": (("float",), "float"),
    "fcos": (("float",), "float"),
    "fexp": (("float",), "float"),
    "flog": (("float",), "float"),
    "fabs": (("float",), "float"),
    "ffloor": (("float",), "float"),
    "f2i": (("float",), "int"),
    "ticks": ((), "int"),
}

_BUILTIN_SOURCES: dict[str, tuple[str | None, list[tuple[str, str]]]] = {
    # name -> (super, [(field, type)])
    "Object": (None, []),
    "Throwable": ("Object", [("code", "int")]),
    "Exception": ("Throwable", []),
}


class MethodInfo:
    """Resolved signature of a declared (or builtin) method."""

    __slots__ = ("name", "param_types", "return_type", "is_static",
                 "declaring_class", "decl")

    def __init__(self, name, param_types, return_type, is_static,
                 declaring_class, decl=None):
        self.name = name
        self.param_types = list(param_types)
        self.return_type = return_type
        self.is_static = is_static
        self.declaring_class = declaring_class
        self.decl = decl


class ClassInfo:
    """Resolved view of one class: hierarchy, fields and methods."""

    __slots__ = ("name", "super_name", "decl", "instance_fields",
                 "static_fields", "methods", "has_ctor")

    def __init__(self, name: str, super_name: str | None, decl=None):
        self.name = name
        self.super_name = super_name
        self.decl = decl
        self.instance_fields: dict[str, tuple[str, str]] = {}  # n->(t, owner)
        self.static_fields: dict[str, tuple[str, str]] = {}
        self.methods: dict[str, MethodInfo] = {}
        self.has_ctor = False


class World:
    """All classes visible to a compilation."""

    def __init__(self) -> None:
        self.classes: dict[str, ClassInfo] = {}

    def cls(self, name: str, pos=None) -> ClassInfo:
        info = self.classes.get(name)
        if info is None:
            raise SemanticError(f"unknown class {name!r}", pos)
        return info

    def is_class(self, name: str) -> bool:
        return name in self.classes

    def is_subclass(self, sub: str, sup: str) -> bool:
        name: str | None = sub
        while name is not None:
            if name == sup:
                return True
            name = self.classes[name].super_name
        return False

    def find_field(self, cls_name: str, field: str,
                   static: bool) -> tuple[str, str] | None:
        """(type, declaring class) searching up the hierarchy."""
        name: str | None = cls_name
        while name is not None:
            info = self.classes[name]
            table = info.static_fields if static else info.instance_fields
            if field in table:
                return table[field]
            name = info.super_name
        return None

    def find_method(self, cls_name: str, method: str) -> MethodInfo | None:
        name: str | None = cls_name
        while name is not None:
            info = self.classes[name]
            if method in info.methods:
                return info.methods[method]
            name = info.super_name
        return None


def analyze(unit: ast.CompilationUnit) -> World:
    """Type-check and annotate `unit`; returns the class World."""
    world = _build_world(unit)
    checker = _Checker(world)
    for cls in unit.classes:
        checker.check_class(cls)
    return world


# ---------------------------------------------------------------------------

def _build_world(unit: ast.CompilationUnit) -> World:
    world = World()
    for name, (super_name, fields) in _BUILTIN_SOURCES.items():
        info = ClassInfo(name, super_name)
        for fname, ftype in fields:
            info.instance_fields[fname] = (ftype, name)
        world.classes[name] = info

    for cls in unit.classes:
        if cls.name in world.classes:
            raise SemanticError(f"duplicate class {cls.name!r}", cls.pos)
        if cls.name == "Sys":
            raise SemanticError("class name 'Sys' is reserved", cls.pos)
        world.classes[cls.name] = ClassInfo(cls.name, cls.super_name, cls)

    # Validate hierarchy (existence + acyclicity).
    for cls in unit.classes:
        seen = {cls.name}
        name = cls.super_name
        while name is not None:
            if name not in world.classes:
                raise SemanticError(
                    f"class {cls.name!r} extends unknown class {name!r}",
                    cls.pos)
            if name in seen:
                raise SemanticError(
                    f"inheritance cycle through {cls.name!r}", cls.pos)
            seen.add(name)
            name = world.classes[name].super_name

    # Fields and method signatures.
    for cls in unit.classes:
        info = world.classes[cls.name]
        for fdecl in cls.fields:
            _check_type_exists(world, fdecl.type_name, fdecl.pos)
            table = (info.static_fields if fdecl.is_static
                     else info.instance_fields)
            if fdecl.name in table:
                raise SemanticError(
                    f"duplicate field {cls.name}.{fdecl.name}", fdecl.pos)
            table[fdecl.name] = (fdecl.type_name, cls.name)
        for mdecl in cls.methods:
            if mdecl.name in info.methods:
                raise SemanticError(
                    f"duplicate method {cls.name}.{mdecl.name}", mdecl.pos)
            if mdecl.return_type != "void":
                _check_type_exists(world, mdecl.return_type, mdecl.pos)
            for param in mdecl.params:
                _check_type_exists(world, param.type_name, param.pos)
            info.methods[mdecl.name] = MethodInfo(
                mdecl.name, [p.type_name for p in mdecl.params],
                mdecl.return_type, mdecl.is_static, cls.name, mdecl)
            if mdecl.is_ctor:
                info.has_ctor = True

    # Override compatibility: the dispatch-by-name model requires an
    # override to keep the exact signature of the inherited method.
    for cls in unit.classes:
        info = world.classes[cls.name]
        for name, method in info.methods.items():
            if method.is_static or name == "<init>":
                continue
            inherited = (world.find_method(info.super_name, name)
                         if info.super_name else None)
            if inherited is None or inherited.is_static:
                continue
            if (inherited.param_types != method.param_types
                    or inherited.return_type != method.return_type):
                raise SemanticError(
                    f"{cls.name}.{name} overrides "
                    f"{inherited.declaring_class}.{name} with a different "
                    f"signature", method.decl.pos)
    return world


def _check_type_exists(world: World, type_name: str, pos) -> None:
    base = type_name
    while is_array(base):
        base = element_type(base)
    if base in ("int", "float", "boolean", "String"):
        return
    if not world.is_class(base):
        raise SemanticError(f"unknown type {type_name!r}", pos)


# ---------------------------------------------------------------------------

class _Scope:
    def __init__(self, parent=None):
        self.parent = parent
        self.names: dict[str, tuple[int, str]] = {}   # name -> (slot, type)

    def lookup(self, name: str):
        scope = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class _Checker:
    def __init__(self, world: World) -> None:
        self.world = world
        self.cls: ClassInfo | None = None
        self.method: ast.MethodDecl | None = None
        self.scope: _Scope | None = None
        self.next_slot = 0
        self.loop_depth = 0
        self.breakable_depth = 0

    # ------------------------------------------------------------------
    def check_class(self, cls: ast.ClassDecl) -> None:
        self.cls = self.world.classes[cls.name]
        for method in cls.methods:
            self.check_method(method)

    def check_method(self, method: ast.MethodDecl) -> None:
        self.method = method
        self.scope = _Scope()
        self.next_slot = 0 if method.is_static else 1   # slot 0 = this
        self.loop_depth = 0
        self.breakable_depth = 0
        for param in method.params:
            self._declare(param.name, param.type_name, param.pos)
        self.check_block(method.body)
        method.max_slots = self.next_slot
        if not self._always_exits(method.body):
            if method.return_type != "void":
                raise SemanticError(
                    f"method {method.name!r} may finish without a return",
                    method.pos)

    def _declare(self, name: str, type_name: str, pos) -> int:
        if name in self.scope.names:
            raise SemanticError(f"duplicate variable {name!r}", pos)
        slot = self.next_slot
        self.next_slot += 1
        self.scope.names[name] = (slot, type_name)
        return slot

    # ------------------------------------------------------------------
    # Statements.
    def check_block(self, block: ast.Block) -> None:
        self.scope = _Scope(self.scope)
        for i, stmt in enumerate(block.stmts):
            block.stmts[i] = self.check_stmt(stmt)
        self.scope = self.scope.parent

    def check_stmt(self, stmt: ast.Stmt) -> ast.Stmt:
        if isinstance(stmt, ast.Block):
            self.check_block(stmt)
            return stmt
        if isinstance(stmt, ast.VarDecl):
            _check_type_exists(self.world, stmt.type_name, stmt.pos)
            if stmt.init is not None:
                stmt.init = self._coerce(self.check_expr(stmt.init),
                                         stmt.type_name, stmt.pos)
            stmt.slot = self._declare(stmt.name, stmt.type_name, stmt.pos)
            return stmt
        if isinstance(stmt, ast.ExprStmt):
            stmt.expr = self.check_expr(stmt.expr)
            return stmt
        if isinstance(stmt, ast.If):
            stmt.cond = self._require(self.check_expr(stmt.cond),
                                      "boolean", stmt.pos)
            stmt.then_branch = self.check_stmt(stmt.then_branch)
            if stmt.else_branch is not None:
                stmt.else_branch = self.check_stmt(stmt.else_branch)
            return stmt
        if isinstance(stmt, ast.While):
            stmt.cond = self._require(self.check_expr(stmt.cond),
                                      "boolean", stmt.pos)
            self.loop_depth += 1
            self.breakable_depth += 1
            stmt.body = self.check_stmt(stmt.body)
            self.loop_depth -= 1
            self.breakable_depth -= 1
            return stmt
        if isinstance(stmt, ast.DoWhile):
            self.loop_depth += 1
            self.breakable_depth += 1
            stmt.body = self.check_stmt(stmt.body)
            self.loop_depth -= 1
            self.breakable_depth -= 1
            stmt.cond = self._require(self.check_expr(stmt.cond),
                                      "boolean", stmt.pos)
            return stmt
        if isinstance(stmt, ast.For):
            self.scope = _Scope(self.scope)
            if stmt.init is not None:
                stmt.init = self.check_stmt(stmt.init)
            if stmt.cond is not None:
                stmt.cond = self._require(self.check_expr(stmt.cond),
                                          "boolean", stmt.pos)
            if stmt.update is not None:
                stmt.update = self.check_expr(stmt.update)
            self.loop_depth += 1
            self.breakable_depth += 1
            stmt.body = self.check_stmt(stmt.body)
            self.loop_depth -= 1
            self.breakable_depth -= 1
            self.scope = self.scope.parent
            return stmt
        if isinstance(stmt, ast.Return):
            expected = self.method.return_type
            if stmt.value is None:
                if expected != "void":
                    raise SemanticError(
                        f"method returns {expected}, not void", stmt.pos)
            else:
                if expected == "void":
                    raise SemanticError(
                        "void method cannot return a value", stmt.pos)
                stmt.value = self._coerce(self.check_expr(stmt.value),
                                          expected, stmt.pos)
            return stmt
        if isinstance(stmt, ast.Break):
            if self.breakable_depth == 0:
                raise SemanticError("break outside loop or switch",
                                    stmt.pos)
            return stmt
        if isinstance(stmt, ast.Continue):
            if self.loop_depth == 0:
                raise SemanticError("continue outside loop", stmt.pos)
            return stmt
        if isinstance(stmt, ast.Throw):
            stmt.value = self.check_expr(stmt.value)
            vtype = stmt.value.type
            if (vtype is None or not self.world.is_class(vtype)
                    or not self.world.is_subclass(vtype, "Throwable")):
                raise SemanticError(
                    f"throw of non-Throwable type {vtype}", stmt.pos)
            return stmt
        if isinstance(stmt, ast.TryCatch):
            self.check_block(stmt.body)
            if not (self.world.is_class(stmt.exc_class)
                    and self.world.is_subclass(stmt.exc_class, "Throwable")):
                raise SemanticError(
                    f"catch of non-Throwable class {stmt.exc_class!r}",
                    stmt.pos)
            self.scope = _Scope(self.scope)
            stmt.var_slot = self._declare(stmt.var_name, stmt.exc_class,
                                          stmt.pos)
            self.check_block(stmt.handler)
            self.scope = self.scope.parent
            return stmt
        if isinstance(stmt, ast.Switch):
            stmt.scrutinee = self._require(self.check_expr(stmt.scrutinee),
                                           "int", stmt.pos)
            seen: set[int] = set()
            self.breakable_depth += 1
            for case in stmt.cases:
                for value in case.values:
                    if value in seen:
                        raise SemanticError(
                            f"duplicate case label {value}", stmt.pos)
                    seen.add(value)
                for i, s in enumerate(case.stmts):
                    case.stmts[i] = self.check_stmt(s)
            if stmt.default is not None:
                for i, s in enumerate(stmt.default):
                    stmt.default[i] = self.check_stmt(s)
            self.breakable_depth -= 1
            return stmt
        raise SemanticError(f"unhandled statement {type(stmt).__name__}",
                            stmt.pos)

    # ------------------------------------------------------------------
    # Expressions: each check returns the (possibly rewritten) node with
    # `type` set.
    def check_expr(self, expr: ast.Expr) -> ast.Expr:
        method = getattr(self, f"_check_{type(expr).__name__}", None)
        if method is None:
            raise SemanticError(
                f"unhandled expression {type(expr).__name__}", expr.pos)
        return method(expr)

    def _check_IntLit(self, e: ast.IntLit):
        e.type = "int"
        return e

    def _check_FloatLit(self, e: ast.FloatLit):
        e.type = "float"
        return e

    def _check_StrLit(self, e: ast.StrLit):
        e.type = "String"
        return e

    def _check_BoolLit(self, e: ast.BoolLit):
        e.type = "boolean"
        return e

    def _check_NullLit(self, e: ast.NullLit):
        e.type = "null"
        return e

    def _check_This(self, e: ast.This):
        if self.method.is_static:
            raise SemanticError("'this' in a static method", e.pos)
        e.type = self.cls.name
        return e

    def _check_Name(self, e: ast.Name):
        hit = self.scope.lookup(e.ident)
        if hit is not None:
            slot, type_name = hit
            e.binding = ("local", slot)
            e.type = type_name
            return e
        if not self.method.is_static:
            field = self.world.find_field(self.cls.name, e.ident,
                                          static=False)
            if field is not None:
                e.binding = ("field", e.ident)
                e.type = field[0]
                return e
        static = self.world.find_field(self.cls.name, e.ident, static=True)
        if static is not None:
            e.binding = ("static", (static[1], e.ident))
            e.type = static[0]
            return e
        if self.world.is_class(e.ident) or e.ident == "Sys":
            e.binding = ("class", e.ident)
            e.type = None   # not a value
            return e
        raise SemanticError(f"unknown name {e.ident!r}", e.pos)

    def _check_Unary(self, e: ast.Unary):
        e.operand = self.check_expr(e.operand)
        t = e.operand.type
        if e.op == "-":
            if t not in ("int", "float"):
                raise SemanticError(f"unary - on {t}", e.pos)
            e.type = t
        elif e.op == "!":
            self._require(e.operand, "boolean", e.pos)
            e.type = "boolean"
        elif e.op == "~":
            self._require(e.operand, "int", e.pos)
            e.type = "int"
        else:
            raise SemanticError(f"unknown unary operator {e.op}", e.pos)
        return e

    def _check_Binary(self, e: ast.Binary):
        e.left = self.check_expr(e.left)
        e.right = self.check_expr(e.right)
        lt, rt = e.left.type, e.right.type
        op = e.op
        if op in ("&", "|", "^", "<<", ">>", ">>>", "%"):
            self._require(e.left, "int", e.pos)
            self._require(e.right, "int", e.pos)
            e.type = "int"
            return e
        if op in ("+", "-", "*", "/"):
            if lt not in ("int", "float") or rt not in ("int", "float"):
                raise SemanticError(f"arithmetic {op} on {lt} and {rt}",
                                    e.pos)
            if "float" in (lt, rt):
                e.left = self._coerce(e.left, "float", e.pos)
                e.right = self._coerce(e.right, "float", e.pos)
                e.type = "float"
            else:
                e.type = "int"
            return e
        if op in ("<", "<=", ">", ">="):
            if lt not in ("int", "float") or rt not in ("int", "float"):
                raise SemanticError(f"comparison {op} on {lt} and {rt}",
                                    e.pos)
            if "float" in (lt, rt):
                e.left = self._coerce(e.left, "float", e.pos)
                e.right = self._coerce(e.right, "float", e.pos)
            e.type = "boolean"
            return e
        if op in ("==", "!="):
            numeric = ("int", "float")
            if lt in numeric and rt in numeric:
                if "float" in (lt, rt):
                    e.left = self._coerce(e.left, "float", e.pos)
                    e.right = self._coerce(e.right, "float", e.pos)
            elif lt == rt == "boolean":
                pass
            elif self._ref_comparable(lt, rt):
                pass
            else:
                raise SemanticError(f"cannot compare {lt} with {rt}", e.pos)
            e.type = "boolean"
            return e
        raise SemanticError(f"unknown operator {op}", e.pos)

    def _ref_comparable(self, lt: str, rt: str) -> bool:
        def ref(t):
            return t == "null" or t == "String" or is_array(t) \
                or self.world.is_class(t)
        return ref(lt) and ref(rt)

    def _check_Logical(self, e: ast.Logical):
        e.left = self._require(self.check_expr(e.left), "boolean", e.pos)
        e.right = self._require(self.check_expr(e.right), "boolean", e.pos)
        e.type = "boolean"
        return e

    def _check_Assign(self, e: ast.Assign):
        e.target = self.check_expr(e.target)
        target = e.target
        if isinstance(target, ast.Name):
            if target.binding[0] == "class":
                raise SemanticError("cannot assign to a class name", e.pos)
        elif isinstance(target, ast.ArrayLength):
            raise SemanticError("array length is read-only", e.pos)
        elif not isinstance(target, (ast.FieldAccess, ast.Index)):
            raise SemanticError("invalid assignment target", e.pos)
        e.value = self._coerce(self.check_expr(e.value), target.type, e.pos)
        e.type = target.type
        return e

    def _check_CompoundAssign(self, e: ast.CompoundAssign):
        e.target = self.check_expr(e.target)
        target = e.target
        if isinstance(target, ast.Name):
            if target.binding[0] == "class":
                raise SemanticError("cannot assign to a class name",
                                    e.pos)
        elif isinstance(target, ast.ArrayLength):
            raise SemanticError("array length is read-only", e.pos)
        elif not isinstance(target, (ast.FieldAccess, ast.Index)):
            raise SemanticError("invalid assignment target", e.pos)
        ttype = target.type
        op = e.op
        if op in ("&", "|", "^", "<<", ">>", ">>>", "%"):
            if ttype != "int":
                raise SemanticError(f"{op}= requires an int target",
                                    e.pos)
            e.value = self._require(self.check_expr(e.value), "int",
                                    e.pos)
        else:
            if ttype not in ("int", "float"):
                raise SemanticError(
                    f"{op}= requires a numeric target, got {ttype}",
                    e.pos)
            e.value = self._coerce(self.check_expr(e.value), ttype,
                                   e.pos)
        e.type = ttype
        return e

    def _check_Ternary(self, e: ast.Ternary):
        e.cond = self._require(self.check_expr(e.cond), "boolean",
                               e.pos)
        e.then = self.check_expr(e.then)
        e.otherwise = self.check_expr(e.otherwise)
        tt, ot = e.then.type, e.otherwise.type
        if tt == ot:
            e.type = tt
        elif {tt, ot} == {"int", "float"}:
            e.then = self._coerce(e.then, "float", e.pos)
            e.otherwise = self._coerce(e.otherwise, "float", e.pos)
            e.type = "float"
        elif self._try_coerce(e.then, ot) is not None:
            e.then = self._coerce(e.then, ot, e.pos)
            e.type = ot
        elif self._try_coerce(e.otherwise, tt) is not None:
            e.otherwise = self._coerce(e.otherwise, tt, e.pos)
            e.type = tt
        else:
            raise SemanticError(
                f"ternary branches have incompatible types {tt} / {ot}",
                e.pos)
        return e

    def _check_FieldAccess(self, e: ast.FieldAccess):
        e.obj = self.check_expr(e.obj)
        obj = e.obj
        if isinstance(obj, ast.Name) and obj.binding[0] == "class":
            cls_name = obj.binding[1]
            if cls_name == "Sys":
                raise SemanticError("Sys has no fields", e.pos)
            hit = self.world.find_field(cls_name, e.name, static=True)
            if hit is None:
                raise SemanticError(
                    f"no static field {cls_name}.{e.name}", e.pos)
            bound = ast.Name(e.name, pos=e.pos)
            bound.binding = ("static", (hit[1], e.name))
            bound.type = hit[0]
            return bound
        if obj.type is not None and is_array(obj.type):
            if e.name != "length":
                raise SemanticError(
                    f"arrays have no field {e.name!r}", e.pos)
            node = ast.ArrayLength(obj, pos=e.pos)
            node.type = "int"
            return node
        if obj.type is None or not self.world.is_class(obj.type):
            raise SemanticError(
                f"field access on non-object type {obj.type}", e.pos)
        hit = self.world.find_field(obj.type, e.name, static=False)
        if hit is None:
            raise SemanticError(f"no field {obj.type}.{e.name}", e.pos)
        e.type = hit[0]
        return e

    def _check_Index(self, e: ast.Index):
        e.array = self.check_expr(e.array)
        e.index = self._require(self.check_expr(e.index), "int", e.pos)
        if e.array.type is None or not is_array(e.array.type):
            raise SemanticError(
                f"indexing non-array type {e.array.type}", e.pos)
        e.type = element_type(e.array.type)
        return e

    def _check_ArrayLength(self, e: ast.ArrayLength):
        e.type = "int"
        return e

    def _check_Call(self, e: ast.Call):
        target = e.target
        if isinstance(target, ast.Name):
            # Unqualified: a method of the current class (or inherited).
            info = self.world.find_method(self.cls.name, target.ident)
            if info is None:
                raise SemanticError(
                    f"unknown method {target.ident!r}", e.pos)
            if info.is_static:
                e.resolved = ("static",
                              (info.declaring_class, info.name))
            else:
                if self.method.is_static:
                    raise SemanticError(
                        f"instance method {info.name!r} called from a "
                        f"static context", e.pos)
                e.resolved = ("virtual-this", info.name)
            return self._check_args(e, info.param_types, info.return_type)

        if isinstance(target, ast.FieldAccess):
            target.obj = self.check_expr(target.obj)
            obj = target.obj
            if isinstance(obj, ast.Name) and obj.binding is not None \
                    and obj.binding[0] == "class":
                cls_name = obj.binding[1]
                if cls_name == "Sys":
                    sig = NATIVE_SIGNATURES.get(target.name)
                    if sig is None:
                        raise SemanticError(
                            f"unknown native Sys.{target.name}", e.pos)
                    e.resolved = ("native", target.name)
                    return self._check_args(e, list(sig[0]), sig[1])
                info = self.world.find_method(cls_name, target.name)
                if info is None or not info.is_static:
                    raise SemanticError(
                        f"no static method {cls_name}.{target.name}", e.pos)
                e.resolved = ("static", (info.declaring_class, info.name))
                return self._check_args(e, info.param_types,
                                        info.return_type)
            if obj.type is None or not self.world.is_class(obj.type):
                raise SemanticError(
                    f"method call on non-object type {obj.type}", e.pos)
            info = self.world.find_method(obj.type, target.name)
            if info is None or info.is_static:
                raise SemanticError(
                    f"no instance method {obj.type}.{target.name}", e.pos)
            e.resolved = ("virtual", target.name)
            return self._check_args(e, info.param_types, info.return_type)

        raise SemanticError("uncallable expression", e.pos)

    def _check_args(self, e: ast.Call, param_types: list[str],
                    return_type: str) -> ast.Call:
        if len(e.args) != len(param_types):
            raise SemanticError(
                f"call expects {len(param_types)} arguments, got "
                f"{len(e.args)}", e.pos)
        for i, (arg, expected) in enumerate(zip(e.args, param_types)):
            e.args[i] = self._coerce(self.check_expr(arg), expected, e.pos)
        e.type = return_type
        return e

    def _check_NewObject(self, e: ast.NewObject):
        if not self.world.is_class(e.class_name):
            raise SemanticError(f"unknown class {e.class_name!r}", e.pos)
        info = self.world.cls(e.class_name)
        ctor = info.methods.get("<init>")
        if ctor is None:
            e.has_ctor = False
            if e.args:
                raise SemanticError(
                    f"class {e.class_name} has no constructor but "
                    f"arguments were given", e.pos)
        else:
            e.has_ctor = True
            if len(e.args) != len(ctor.param_types):
                raise SemanticError(
                    f"constructor {e.class_name} expects "
                    f"{len(ctor.param_types)} arguments, got {len(e.args)}",
                    e.pos)
            for i, (arg, expected) in enumerate(
                    zip(e.args, ctor.param_types)):
                e.args[i] = self._coerce(self.check_expr(arg), expected,
                                         e.pos)
        e.type = e.class_name
        return e

    def _check_NewArray(self, e: ast.NewArray):
        _check_type_exists(self.world, e.elem, e.pos)
        e.size = self._require(self.check_expr(e.size), "int", e.pos)
        e.type = e.elem + "[]"
        return e

    def _check_Cast(self, e: ast.Cast):
        e.operand = self.check_expr(e.operand)
        src = e.operand.type
        if e.target_type not in ("int", "float"):
            raise SemanticError(
                f"cast to {e.target_type!r} not supported", e.pos)
        if src not in ("int", "float"):
            raise SemanticError(f"cannot cast {src} to {e.target_type}",
                                e.pos)
        e.type = e.target_type
        return e

    def _check_InstanceOf(self, e: ast.InstanceOf):
        e.operand = self.check_expr(e.operand)
        if not self.world.is_class(e.class_name):
            raise SemanticError(f"unknown class {e.class_name!r}", e.pos)
        t = e.operand.type
        if t != "null" and not self.world.is_class(t):
            raise SemanticError(
                f"instanceof on non-object type {t}", e.pos)
        e.type = "boolean"
        return e

    # ------------------------------------------------------------------
    # Type utilities.
    def _require(self, expr: ast.Expr, expected: str, pos) -> ast.Expr:
        coerced = self._try_coerce(expr, expected)
        if coerced is None:
            raise SemanticError(
                f"expected {expected}, found {expr.type}", pos)
        return coerced

    def _coerce(self, expr: ast.Expr, expected: str, pos) -> ast.Expr:
        coerced = self._try_coerce(expr, expected)
        if coerced is None:
            raise SemanticError(
                f"cannot assign {expr.type} to {expected}", pos)
        return coerced

    def _try_coerce(self, expr: ast.Expr, expected: str):
        actual = expr.type
        if actual == expected:
            return expr
        if actual == "int" and expected == "float":
            cast = ast.Cast("float", expr, pos=expr.pos)
            cast.type = "float"
            return cast
        if actual == "null" and (expected == "String"
                                 or is_array(expected)
                                 or self.world.is_class(expected)):
            return expr
        if (actual is not None and self.world.is_class(actual)
                and self.world.is_class(expected)
                and self.world.is_subclass(actual, expected)):
            return expr
        return None

    # ------------------------------------------------------------------
    def _always_exits(self, stmt: ast.Stmt) -> bool:
        """Conservative: does `stmt` always return or throw?"""
        if isinstance(stmt, (ast.Return, ast.Throw)):
            return True
        if isinstance(stmt, ast.Block):
            return bool(stmt.stmts) and self._always_exits(stmt.stmts[-1])
        if isinstance(stmt, ast.If):
            return (stmt.else_branch is not None
                    and self._always_exits(stmt.then_branch)
                    and self._always_exits(stmt.else_branch))
        if isinstance(stmt, ast.TryCatch):
            return (self._always_exits(stmt.body)
                    and self._always_exits(stmt.handler))
        return False

"""Mini-Java compiler: the workload-generation substrate.

The paper evaluates on SPECjvm98/soot/scimark Java programs; this
package provides a small Java-flavoured language and compiler targeting
the :mod:`repro.jvm` bytecode so the reproduction's workloads can be
written as real programs with the same *branch structure* as their
namesakes (loops, polymorphic calls, switches, exceptions).
"""

from .compiler import compile_classes, compile_source
from .diagnostics import CompileError, LexError, ParseError, SemanticError
from .lexer import Token, tokenize
from .parser import parse
from .sema import NATIVE_SIGNATURES, World, analyze

__all__ = [
    "compile_classes", "compile_source", "CompileError", "LexError",
    "ParseError", "SemanticError", "Token", "tokenize", "parse",
    "NATIVE_SIGNATURES", "World", "analyze",
]

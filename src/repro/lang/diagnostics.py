"""Source positions and compile-time error reporting."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Pos:
    """A 1-based line/column source position."""

    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"


NO_POS = Pos(0, 0)


class CompileError(Exception):
    """Any error produced by the mini-Java compiler."""

    def __init__(self, message: str, pos: Pos | None = None) -> None:
        self.pos = pos or NO_POS
        self.message = message
        super().__init__(f"{self.pos}: {message}" if pos else message)


class LexError(CompileError):
    """Invalid character or malformed literal."""


class ParseError(CompileError):
    """Syntax error."""


class SemanticError(CompileError):
    """Name resolution or type error."""

"""Abstract syntax tree for the mini-Java workload language.

Types are plain strings: ``"int"``, ``"float"``, ``"boolean"``,
``"void"``, ``"String"``, class names, and array types written with a
``[]`` suffix (``"int[]"``, ``"Shape[]"``).  The semantic analyzer
annotates expression nodes in place (``type``, ``binding``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .diagnostics import NO_POS, Pos


def is_array(type_name: str) -> bool:
    return type_name.endswith("[]")


def element_type(type_name: str) -> str:
    if not is_array(type_name):
        raise ValueError(f"{type_name} is not an array type")
    return type_name[:-2]


def is_reference(type_name: str) -> bool:
    return (is_array(type_name)
            or type_name not in ("int", "float", "boolean", "void"))


# ---------------------------------------------------------------------------
# Expressions.  Each carries `pos` and a sema-filled `type`.

@dataclass(slots=True)
class Expr:
    pos: Pos = field(default=NO_POS, kw_only=True)
    type: str | None = field(default=None, kw_only=True)


@dataclass(slots=True)
class IntLit(Expr):
    value: int = 0


@dataclass(slots=True)
class FloatLit(Expr):
    value: float = 0.0


@dataclass(slots=True)
class StrLit(Expr):
    value: str = ""


@dataclass(slots=True)
class BoolLit(Expr):
    value: bool = False


@dataclass(slots=True)
class NullLit(Expr):
    pass


@dataclass(slots=True)
class This(Expr):
    pass


@dataclass(slots=True)
class Name(Expr):
    """An identifier; sema fills `binding`:
    ("local", slot) | ("field", name) | ("static", (class, name)) |
    ("class", name)."""

    ident: str = ""
    binding: tuple | None = field(default=None, kw_only=True)


@dataclass(slots=True)
class Unary(Expr):
    op: str = ""          # "-", "!", "~"
    operand: Expr | None = None


@dataclass(slots=True)
class Binary(Expr):
    """Arithmetic / bitwise / comparison; not && or ||."""

    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass(slots=True)
class Logical(Expr):
    """Short-circuit && or ||."""

    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass(slots=True)
class Assign(Expr):
    """target = value; target is Name, FieldAccess or Index."""

    target: Expr | None = None
    value: Expr | None = None


@dataclass(slots=True)
class CompoundAssign(Expr):
    """target op= value (also ++/-- desugared with op '+'/'-' and 1).

    The target is evaluated once.  In value position the result is the
    *new* value (i.e. ++x semantics; x++ in value position is not
    distinguished — a documented deviation from Java, where compound
    expressions are overwhelmingly used for effect).
    """

    target: Expr | None = None
    op: str = "+"
    value: Expr | None = None


@dataclass(slots=True)
class Ternary(Expr):
    """cond ? then : otherwise."""

    cond: Expr | None = None
    then: Expr | None = None
    otherwise: Expr | None = None


@dataclass(slots=True)
class FieldAccess(Expr):
    """obj.name; obj of None means an unqualified name resolved by sema."""

    obj: Expr | None = None
    name: str = ""


@dataclass(slots=True)
class Index(Expr):
    array: Expr | None = None
    index: Expr | None = None


@dataclass(slots=True)
class Call(Expr):
    """A call; sema fills `resolved`:
    ("native", name) | ("static", (class, name)) |
    ("virtual", name) | ("special", (class, name))."""

    target: Expr | None = None      # Name or FieldAccess
    args: list[Expr] = field(default_factory=list)
    resolved: tuple | None = field(default=None, kw_only=True)


@dataclass(slots=True)
class NewObject(Expr):
    class_name: str = ""
    args: list[Expr] = field(default_factory=list)
    has_ctor: bool = field(default=False, kw_only=True)


@dataclass(slots=True)
class NewArray(Expr):
    elem: str = ""
    size: Expr | None = None


@dataclass(slots=True)
class Cast(Expr):
    target_type: str = ""
    operand: Expr | None = None


@dataclass(slots=True)
class InstanceOf(Expr):
    operand: Expr | None = None
    class_name: str = ""


@dataclass(slots=True)
class ArrayLength(Expr):
    """`arr.length`, produced by sema from FieldAccess on an array."""

    array: Expr | None = None


# ---------------------------------------------------------------------------
# Statements.

@dataclass(slots=True)
class Stmt:
    pos: Pos = field(default=NO_POS, kw_only=True)


@dataclass(slots=True)
class VarDecl(Stmt):
    type_name: str = ""
    name: str = ""
    init: Expr | None = None
    slot: int = field(default=-1, kw_only=True)   # sema-assigned local slot


@dataclass(slots=True)
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass(slots=True)
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass(slots=True)
class If(Stmt):
    cond: Expr | None = None
    then_branch: Stmt | None = None
    else_branch: Stmt | None = None


@dataclass(slots=True)
class While(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass(slots=True)
class DoWhile(Stmt):
    body: Stmt | None = None
    cond: Expr | None = None


@dataclass(slots=True)
class For(Stmt):
    init: Stmt | None = None        # VarDecl or ExprStmt or None
    cond: Expr | None = None
    update: Expr | None = None
    body: Stmt | None = None


@dataclass(slots=True)
class Return(Stmt):
    value: Expr | None = None


@dataclass(slots=True)
class Break(Stmt):
    pass


@dataclass(slots=True)
class Continue(Stmt):
    pass


@dataclass(slots=True)
class Throw(Stmt):
    value: Expr | None = None


@dataclass(slots=True)
class TryCatch(Stmt):
    body: Block | None = None
    exc_class: str = ""
    var_name: str = ""
    handler: Block | None = None
    var_slot: int = field(default=-1, kw_only=True)


@dataclass(slots=True)
class SwitchCase:
    """One `case value:` arm (no fallthrough grouping at the AST level —
    consecutive case labels share a statement list)."""

    values: list[int]
    stmts: list[Stmt]

    def __init__(self, values: list[int], stmts: list[Stmt]) -> None:
        self.values = values
        self.stmts = stmts


@dataclass(slots=True)
class Switch(Stmt):
    scrutinee: Expr | None = None
    cases: list[SwitchCase] = field(default_factory=list)
    default: list[Stmt] | None = None


# ---------------------------------------------------------------------------
# Declarations.

@dataclass(slots=True)
class Param:
    type_name: str
    name: str
    pos: Pos = NO_POS


@dataclass(slots=True)
class FieldDecl:
    type_name: str
    name: str
    is_static: bool = False
    pos: Pos = NO_POS


@dataclass(slots=True)
class MethodDecl:
    name: str
    params: list[Param]
    return_type: str
    body: Block
    is_static: bool = False
    is_ctor: bool = False
    pos: Pos = NO_POS
    max_slots: int = 0          # sema-assigned local slot count


@dataclass(slots=True)
class ClassDecl:
    name: str
    super_name: str | None
    fields: list[FieldDecl]
    methods: list[MethodDecl]
    pos: Pos = NO_POS


@dataclass(slots=True)
class CompilationUnit:
    classes: list[ClassDecl]

"""Recursive-descent parser for the mini-Java workload language.

Grammar summary::

    unit       := classdecl*
    classdecl  := 'class' IDENT ('extends' IDENT)? '{' member* '}'
    member     := field | method | ctor
    field      := 'static'? type IDENT ';'
    method     := 'static'? (type | 'void') IDENT '(' params ')' block
    ctor       := IDENT '(' params ')' block          (name == class name)
    type       := ('int' | 'float' | 'boolean' | IDENT) ('[' ']')*

Expressions follow Java precedence (simplified):
assignment < || < && < | < ^ < & < equality < relational/instanceof
< shift < additive < multiplicative < unary < postfix.
Casts are permitted to 'int' and 'float' only.
"""

from __future__ import annotations

from . import ast
from .diagnostics import ParseError
from .lexer import Token, tokenize

_PRIMITIVES = ("int", "float", "boolean")


def parse(source: str) -> ast.CompilationUnit:
    """Parse source text into a CompilationUnit."""
    return _Parser(tokenize(source)).parse_unit()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.i = 0

    # ------------------------------------------------------------------
    # Token helpers.
    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.i + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.i]
        if tok.kind != "eof":
            self.i += 1
        return tok

    def at(self, text: str, ahead: int = 0) -> bool:
        tok = self.peek(ahead)
        return tok.kind in ("op", "kw") and tok.text == text

    def at_kind(self, kind: str, ahead: int = 0) -> bool:
        return self.peek(ahead).kind == kind

    def accept(self, text: str) -> Token | None:
        if self.at(text):
            return self.next()
        return None

    def expect(self, text: str) -> Token:
        if not self.at(text):
            tok = self.peek()
            raise ParseError(f"expected {text!r}, found {tok.text!r}",
                             tok.pos)
        return self.next()

    def expect_ident(self) -> Token:
        tok = self.peek()
        if tok.kind != "ident":
            raise ParseError(f"expected identifier, found {tok.text!r}",
                             tok.pos)
        return self.next()

    # ------------------------------------------------------------------
    # Declarations.
    def parse_unit(self) -> ast.CompilationUnit:
        classes = []
        while not self.at_kind("eof"):
            classes.append(self.parse_class())
        return ast.CompilationUnit(classes)

    def parse_class(self) -> ast.ClassDecl:
        start = self.expect("class")
        name = self.expect_ident().text
        super_name = "Object"
        if self.accept("extends"):
            super_name = self.expect_ident().text
        self.expect("{")
        fields: list[ast.FieldDecl] = []
        methods: list[ast.MethodDecl] = []
        while not self.at("}"):
            self.parse_member(name, fields, methods)
        self.expect("}")
        return ast.ClassDecl(name, super_name, fields, methods,
                             pos=start.pos)

    def parse_member(self, class_name: str, fields: list,
                     methods: list) -> None:
        start = self.peek()
        is_static = bool(self.accept("static"))

        # Constructor: ClassName '(' ...
        if (not is_static and self.at_kind("ident")
                and self.peek().text == class_name and self.at("(", 1)):
            self.next()
            params = self.parse_params()
            body = self.parse_block()
            methods.append(ast.MethodDecl(
                name="<init>", params=params, return_type="void",
                body=body, is_static=False, is_ctor=True, pos=start.pos))
            return

        if self.accept("void"):
            type_name = "void"
        else:
            type_name = self.parse_type()
        name = self.expect_ident().text

        if self.at("("):
            params = self.parse_params()
            body = self.parse_block()
            methods.append(ast.MethodDecl(
                name=name, params=params, return_type=type_name,
                body=body, is_static=is_static, pos=start.pos))
        else:
            if type_name == "void":
                raise ParseError("field cannot be void", start.pos)
            self.expect(";")
            fields.append(ast.FieldDecl(type_name, name, is_static,
                                        pos=start.pos))

    def parse_params(self) -> list[ast.Param]:
        self.expect("(")
        params: list[ast.Param] = []
        while not self.at(")"):
            if params:
                self.expect(",")
            pos = self.peek().pos
            type_name = self.parse_type()
            name = self.expect_ident().text
            params.append(ast.Param(type_name, name, pos))
        self.expect(")")
        return params

    def parse_type(self) -> str:
        tok = self.peek()
        if tok.kind == "kw" and tok.text in _PRIMITIVES:
            base = self.next().text
        elif tok.kind == "ident":
            base = self.next().text
        else:
            raise ParseError(f"expected a type, found {tok.text!r}", tok.pos)
        while self.at("[") and self.at("]", 1):
            self.next()
            self.next()
            base += "[]"
        return base

    def looks_like_type(self) -> bool:
        """Lookahead: does the statement start with `Type ident`?"""
        tok = self.peek()
        if tok.kind == "kw" and tok.text in _PRIMITIVES:
            return True
        if tok.kind != "ident":
            return False
        # `Foo x` or `Foo[] x`
        ahead = 1
        while self.at("[", ahead) and self.at("]", ahead + 1):
            ahead += 2
        return self.at_kind("ident", ahead)

    # ------------------------------------------------------------------
    # Statements.
    def parse_block(self) -> ast.Block:
        start = self.expect("{")
        stmts: list[ast.Stmt] = []
        while not self.at("}"):
            stmts.append(self.parse_stmt())
        self.expect("}")
        return ast.Block(stmts, pos=start.pos)

    def parse_stmt(self) -> ast.Stmt:
        tok = self.peek()
        if self.at("{"):
            return self.parse_block()
        if self.at("if"):
            return self.parse_if()
        if self.at("while"):
            return self.parse_while()
        if self.at("do"):
            pos = self.next().pos
            body = self.parse_stmt()
            self.expect("while")
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            self.expect(";")
            return ast.DoWhile(body, cond, pos=pos)
        if self.at("for"):
            return self.parse_for()
        if self.at("switch"):
            return self.parse_switch()
        if self.at("return"):
            self.next()
            value = None if self.at(";") else self.parse_expr()
            self.expect(";")
            return ast.Return(value, pos=tok.pos)
        if self.at("break"):
            self.next()
            self.expect(";")
            return ast.Break(pos=tok.pos)
        if self.at("continue"):
            self.next()
            self.expect(";")
            return ast.Continue(pos=tok.pos)
        if self.at("throw"):
            self.next()
            value = self.parse_expr()
            self.expect(";")
            return ast.Throw(value, pos=tok.pos)
        if self.at("try"):
            return self.parse_try()
        if self.looks_like_type():
            return self.parse_var_decl()
        expr = self.parse_expr()
        self.expect(";")
        return ast.ExprStmt(expr, pos=tok.pos)

    def parse_var_decl(self) -> ast.VarDecl:
        pos = self.peek().pos
        type_name = self.parse_type()
        name = self.expect_ident().text
        init = None
        if self.accept("="):
            init = self.parse_expr()
        self.expect(";")
        return ast.VarDecl(type_name, name, init, pos=pos)

    def parse_if(self) -> ast.If:
        pos = self.expect("if").pos
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then_branch = self.parse_stmt()
        else_branch = self.parse_stmt() if self.accept("else") else None
        return ast.If(cond, then_branch, else_branch, pos=pos)

    def parse_while(self) -> ast.While:
        pos = self.expect("while").pos
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        return ast.While(cond, self.parse_stmt(), pos=pos)

    def parse_for(self) -> ast.For:
        pos = self.expect("for").pos
        self.expect("(")
        init: ast.Stmt | None = None
        if not self.at(";"):
            if self.looks_like_type():
                init = self.parse_var_decl()   # consumes the ';'
            else:
                expr = self.parse_expr()
                self.expect(";")
                init = ast.ExprStmt(expr, pos=pos)
        else:
            self.expect(";")
        cond = None if self.at(";") else self.parse_expr()
        self.expect(";")
        update = None if self.at(")") else self.parse_expr()
        self.expect(")")
        return ast.For(init, cond, update, self.parse_stmt(), pos=pos)

    def parse_switch(self) -> ast.Switch:
        pos = self.expect("switch").pos
        self.expect("(")
        scrutinee = self.parse_expr()
        self.expect(")")
        self.expect("{")
        cases: list[ast.SwitchCase] = []
        default: list[ast.Stmt] | None = None
        while not self.at("}"):
            if self.at("case"):
                values = []
                while self.at("case"):
                    self.next()
                    tok = self.peek()
                    negative = bool(self.accept("-"))
                    if not self.at_kind("int"):
                        raise ParseError("case label must be an integer "
                                         "literal", tok.pos)
                    value = self.next().value
                    values.append(-value if negative else value)
                    self.expect(":")
                cases.append(ast.SwitchCase(values, self._case_body()))
            elif self.at("default"):
                self.next()
                self.expect(":")
                if default is not None:
                    raise ParseError("duplicate default label", pos)
                default = self._case_body()
            else:
                tok = self.peek()
                raise ParseError(
                    f"expected 'case' or 'default', found {tok.text!r}",
                    tok.pos)
        self.expect("}")
        return ast.Switch(scrutinee, cases, default, pos=pos)

    def _case_body(self) -> list[ast.Stmt]:
        stmts: list[ast.Stmt] = []
        while not (self.at("case") or self.at("default") or self.at("}")):
            stmts.append(self.parse_stmt())
        return stmts

    def parse_try(self) -> ast.TryCatch:
        pos = self.expect("try").pos
        body = self.parse_block()
        self.expect("catch")
        self.expect("(")
        exc_class = self.expect_ident().text
        var_name = self.expect_ident().text
        self.expect(")")
        handler = self.parse_block()
        return ast.TryCatch(body, exc_class, var_name, handler, pos=pos)

    # ------------------------------------------------------------------
    # Expressions.
    def parse_expr(self) -> ast.Expr:
        return self.parse_assignment()

    _COMPOUND_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/",
                     "%=": "%", "&=": "&", "|=": "|", "^=": "^",
                     "<<=": "<<", ">>=": ">>", ">>>=": ">>>"}

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_ternary()
        if self.at("="):
            pos = self.next().pos
            if not isinstance(left, (ast.Name, ast.FieldAccess, ast.Index)):
                raise ParseError("invalid assignment target", pos)
            value = self.parse_assignment()
            return ast.Assign(left, value, pos=pos)
        for text, op in self._COMPOUND_OPS.items():
            if self.at(text):
                pos = self.next().pos
                if not isinstance(left, (ast.Name, ast.FieldAccess,
                                         ast.Index)):
                    raise ParseError("invalid assignment target", pos)
                value = self.parse_assignment()
                return ast.CompoundAssign(left, op, value, pos=pos)
        return left

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_or()
        if self.at("?"):
            pos = self.next().pos
            then = self.parse_expr()
            self.expect(":")
            otherwise = self.parse_ternary()
            return ast.Ternary(cond, then, otherwise, pos=pos)
        return cond

    def _binary_level(self, operators: tuple[str, ...], sub):
        left = sub()
        while any(self.at(op) for op in operators):
            tok = self.next()
            right = sub()
            left = ast.Binary(tok.text, left, right, pos=tok.pos)
        return left

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.at("||"):
            tok = self.next()
            left = ast.Logical("||", left, self.parse_and(), pos=tok.pos)
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_bitor()
        while self.at("&&"):
            tok = self.next()
            left = ast.Logical("&&", left, self.parse_bitor(), pos=tok.pos)
        return left

    def parse_bitor(self) -> ast.Expr:
        return self._binary_level(("|",), self.parse_bitxor)

    def parse_bitxor(self) -> ast.Expr:
        return self._binary_level(("^",), self.parse_bitand)

    def parse_bitand(self) -> ast.Expr:
        return self._binary_level(("&",), self.parse_equality)

    def parse_equality(self) -> ast.Expr:
        return self._binary_level(("==", "!="), self.parse_relational)

    def parse_relational(self) -> ast.Expr:
        left = self.parse_shift()
        while True:
            if self.at("instanceof"):
                tok = self.next()
                cls = self.expect_ident().text
                left = ast.InstanceOf(left, cls, pos=tok.pos)
            elif any(self.at(op) for op in ("<", "<=", ">", ">=")):
                tok = self.next()
                left = ast.Binary(tok.text, left, self.parse_shift(),
                                  pos=tok.pos)
            else:
                return left

    def parse_shift(self) -> ast.Expr:
        return self._binary_level(("<<", ">>", ">>>"), self.parse_additive)

    def parse_additive(self) -> ast.Expr:
        return self._binary_level(("+", "-"), self.parse_multiplicative)

    def parse_multiplicative(self) -> ast.Expr:
        return self._binary_level(("*", "/", "%"), self.parse_unary)

    def parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if self.at("++") or self.at("--"):
            self.next()
            operand = self.parse_unary()
            if not isinstance(operand, (ast.Name, ast.FieldAccess,
                                        ast.Index)):
                raise ParseError("invalid increment target", tok.pos)
            op = "+" if tok.text == "++" else "-"
            return ast.CompoundAssign(operand, op,
                                      ast.IntLit(1, pos=tok.pos),
                                      pos=tok.pos)
        if self.at("-") or self.at("!") or self.at("~"):
            self.next()
            return ast.Unary(tok.text, self.parse_unary(), pos=tok.pos)
        # Cast: '(' ('int' | 'float') ')' unary
        if (self.at("(") and self.peek(1).kind == "kw"
                and self.peek(1).text in ("int", "float")
                and self.at(")", 2)):
            self.next()
            target = self.next().text
            self.next()
            return ast.Cast(target, self.parse_unary(), pos=tok.pos)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            if self.at("++") or self.at("--"):
                tok = self.next()
                if not isinstance(expr, (ast.Name, ast.FieldAccess,
                                         ast.Index)):
                    raise ParseError("invalid increment target", tok.pos)
                op = "+" if tok.text == "++" else "-"
                return ast.CompoundAssign(expr, op,
                                          ast.IntLit(1, pos=tok.pos),
                                          pos=tok.pos)
            if self.at("."):
                self.next()
                name = self.expect_ident().text
                if self.at("("):
                    args = self.parse_args()
                    expr = ast.Call(ast.FieldAccess(expr, name), args,
                                    pos=expr.pos)
                else:
                    expr = ast.FieldAccess(expr, name, pos=expr.pos)
            elif self.at("["):
                self.next()
                index = self.parse_expr()
                self.expect("]")
                expr = ast.Index(expr, index, pos=expr.pos)
            else:
                return expr

    def parse_args(self) -> list[ast.Expr]:
        self.expect("(")
        args: list[ast.Expr] = []
        while not self.at(")"):
            if args:
                self.expect(",")
            args.append(self.parse_expr())
        self.expect(")")
        return args

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "int":
            self.next()
            return ast.IntLit(tok.value, pos=tok.pos)
        if tok.kind == "float":
            self.next()
            return ast.FloatLit(tok.value, pos=tok.pos)
        if tok.kind == "string":
            self.next()
            return ast.StrLit(tok.value, pos=tok.pos)
        if self.at("true"):
            self.next()
            return ast.BoolLit(True, pos=tok.pos)
        if self.at("false"):
            self.next()
            return ast.BoolLit(False, pos=tok.pos)
        if self.at("null"):
            self.next()
            return ast.NullLit(pos=tok.pos)
        if self.at("this"):
            self.next()
            return ast.This(pos=tok.pos)
        if self.at("new"):
            return self.parse_new()
        if self.at("("):
            self.next()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if tok.kind == "ident":
            self.next()
            if self.at("("):
                args = self.parse_args()
                return ast.Call(ast.Name(tok.text, pos=tok.pos), args,
                                pos=tok.pos)
            return ast.Name(tok.text, pos=tok.pos)
        raise ParseError(f"unexpected token {tok.text!r}", tok.pos)

    def parse_new(self) -> ast.Expr:
        pos = self.expect("new").pos
        tok = self.peek()
        if tok.kind == "kw" and tok.text in _PRIMITIVES:
            base = self.next().text
        elif tok.kind == "ident":
            base = self.next().text
        else:
            raise ParseError("expected a type after 'new'", tok.pos)
        if self.at("("):
            args = self.parse_args()
            return ast.NewObject(base, args, pos=pos)
        if self.at("["):
            self.next()
            size = self.parse_expr()
            self.expect("]")
            elem = base
            while self.at("[") and self.at("]", 1):
                self.next()
                self.next()
                elem += "[]"
            return ast.NewArray(elem, size, pos=pos)
        raise ParseError("expected '(' or '[' after 'new T'", pos)

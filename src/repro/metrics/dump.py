"""Export the branch correlation graph and trace cache for analysis.

- :func:`bcg_to_dict` / :func:`run_to_dict` — JSON-ready structures
  (every counter, summary and trace; suitable for notebooks/diffing).
- :func:`bcg_to_dot` — Graphviz DOT of the hot region of the BCG:
  node shade tracks execution heat, edge labels carry conditional
  probabilities, trace anchors are highlighted.
"""

from __future__ import annotations

import json

from ..core.states import BranchState

_STATE_COLORS = {
    BranchState.UNIQUE: "#1a7f37",
    BranchState.STRONG: "#2f6feb",
    BranchState.WEAK: "#d29922",
    BranchState.NEWLY_CREATED: "#8b949e",
}


def bcg_to_dict(bcg) -> dict:
    """The whole graph as plain data."""
    nodes = []
    for node in bcg.nodes.values():
        nodes.append({
            "key": list(node.key),
            "executions": node.exec_count,
            "countdown": node.countdown,
            "state": node.summary[0].name,
            "best_successor": node.summary[1],
            "total": node.total,
            "anchors_trace": node.trace is not None,
            "edges": [{
                "to_block": z,
                "weight": edge.weight,
                "probability": round(node.edge_probability(z), 6),
            } for z, edge in node.edges.items()],
        })
    return {
        "node_count": len(bcg.nodes),
        "edge_count": bcg.edge_count,
        "decays": bcg.decay_count,
        "nodes": nodes,
    }


def traces_to_list(cache) -> list[dict]:
    """Every cached trace as plain data."""
    return [{
        "serial": trace.serial,
        "blocks": list(trace.key),
        "length": len(trace),
        "expected_completion": round(trace.expected_completion, 6),
        "entries": trace.entries,
        "completions": trace.completions,
        "observed_completion": round(trace.completion_rate, 6),
        "instructions_completed": trace.instr_completed,
        "instructions_partial": trace.instr_partial,
    } for trace in cache.traces.values()]


def run_to_dict(result) -> dict:
    """A full RunResult (stats + graph + traces) as plain data."""
    return {
        "result": result.value,
        "stats": result.stats.as_dict(),
        "bcg": bcg_to_dict(result.profiler.bcg),
        "traces": traces_to_list(result.cache),
    }


def run_to_json(result, indent: int = 2) -> str:
    return json.dumps(run_to_dict(result), indent=indent,
                      default=str, sort_keys=True)


def bcg_to_dot(bcg, max_nodes: int = 40,
               min_probability: float = 0.01) -> str:
    """Graphviz DOT for the `max_nodes` hottest branch nodes."""
    hot = sorted(bcg.nodes.values(), key=lambda n: n.exec_count,
                 reverse=True)[:max_nodes]
    included = {node.key for node in hot}
    peak = max((node.exec_count for node in hot), default=1)

    lines = [
        "digraph bcg {",
        "  rankdir=LR;",
        '  node [shape=box, style="rounded,filled", '
        'fontname="monospace"];',
    ]
    for node in hot:
        color = _STATE_COLORS[node.summary[0]]
        heat = node.exec_count / peak
        penwidth = 1.0 + 2.0 * heat
        anchor = ", peripheries=2" if node.trace is not None else ""
        label = (f"{node.key[0]}\\u2192{node.key[1]}\\n"
                 f"{node.summary[0].name.lower()} "
                 f"n={node.exec_count}")
        lines.append(
            f'  "{node.key}" [label="{label}", color="{color}", '
            f'fillcolor="{color}20", penwidth={penwidth:.1f}{anchor}];')
    for node in hot:
        for z, edge in node.edges.items():
            target_key = (node.dst, z)
            if target_key not in included:
                continue
            probability = node.edge_probability(z)
            if probability < min_probability:
                continue
            style = "bold" if node.summary[1] == z else "solid"
            lines.append(
                f'  "{node.key}" -> "{target_key}" '
                f'[label="{probability:.2f}", style={style}];')
    lines.append("}")
    return "\n".join(lines)

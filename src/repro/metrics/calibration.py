"""Expected-vs-observed completion calibration and cache stability.

The trace constructor *predicts* each trace's completion probability
from the branch correlation graph (Section 3.7 of the paper); the
controller then observes actual completion.  A well-calibrated
predictor is what justifies the paper's speculative-optimization
argument (a trace with a 99% completion bound can absorb a 10x penalty
off the main path and still win).  This module quantifies calibration
and the cache-stability criterion of Section 3.6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .report import Table


@dataclass(slots=True)
class CalibrationBucket:
    """Traces whose expected completion falls in [low, high)."""

    low: float
    high: float
    traces: int = 0
    entries: int = 0
    completions: int = 0

    @property
    def observed_rate(self) -> float:
        if self.entries == 0:
            return 1.0
        return self.completions / self.entries

    @property
    def midpoint(self) -> float:
        return (self.low + self.high) / 2


@dataclass(slots=True)
class CalibrationReport:
    buckets: list[CalibrationBucket] = field(default_factory=list)
    entry_weighted_expected: float = 0.0
    entry_weighted_observed: float = 0.0

    @property
    def calibration_error(self) -> float:
        """Entry-weighted |expected - observed| over populated buckets."""
        total_entries = sum(b.entries for b in self.buckets)
        if total_entries == 0:
            return 0.0
        return sum(abs(b.midpoint - b.observed_rate) * b.entries
                   for b in self.buckets if b.entries) / total_entries

    def to_table(self) -> Table:
        table = Table(
            "Completion calibration (expected vs. observed)",
            ["expected bucket", "traces", "entries", "observed rate"],
            formats=["", "", "", ".1%"])
        for bucket in self.buckets:
            if bucket.traces == 0:
                continue
            table.add_row(f"[{bucket.low:.2f}, {bucket.high:.2f})",
                          bucket.traces, bucket.entries,
                          bucket.observed_rate)
        table.notes.append(
            f"entry-weighted expected {self.entry_weighted_expected:.3f} "
            f"vs observed {self.entry_weighted_observed:.3f}")
        return table


def calibration_report(traces, bucket_count: int = 10,
                       floor: float = 0.5) -> CalibrationReport:
    """Bucket `traces` by expected completion; compare with observed.

    Traces with expected completion below `floor` share the first
    bucket (the constructor rarely emits such traces).
    """
    if bucket_count < 1:
        raise ValueError("bucket_count must be >= 1")
    width = (1.0 - floor) / bucket_count
    buckets = [CalibrationBucket(floor + i * width,
                                 floor + (i + 1) * width)
               for i in range(bucket_count)]
    buckets[-1].high = 1.0 + 1e-9   # include expected == 1.0
    report = CalibrationReport(buckets=buckets)

    weighted_expected = 0.0
    total_entries = 0
    for trace in traces:
        expected = min(max(trace.expected_completion, floor), 1.0)
        index = min(int((expected - floor) / width), bucket_count - 1)
        bucket = buckets[index]
        bucket.traces += 1
        bucket.entries += trace.entries
        bucket.completions += trace.completions
        weighted_expected += trace.expected_completion * trace.entries
        total_entries += trace.entries

    if total_entries:
        report.entry_weighted_expected = weighted_expected / total_entries
        report.entry_weighted_observed = (
            sum(b.completions for b in buckets) / total_entries)
    return report


@dataclass(slots=True)
class StabilityReport:
    """Cache-stability numbers (paper Section 3.6)."""

    traces_constructed: int = 0
    traces_linked: int = 0
    traces_invalidated: int = 0
    anchors_replaced: int = 0
    signals: int = 0
    dispatches: int = 0

    @property
    def replacements_per_construction(self) -> float:
        if self.traces_constructed == 0:
            return 0.0
        return self.anchors_replaced / self.traces_constructed

    @property
    def invalidations_per_thousand_dispatches(self) -> float:
        if self.dispatches == 0:
            return 0.0
        return 1000.0 * self.traces_invalidated / self.dispatches

    def to_table(self) -> Table:
        table = Table("Trace cache stability",
                      ["metric", "value"], formats=["", ".3f"])
        table.add_row("traces constructed",
                      float(self.traces_constructed))
        table.add_row("hash-table reuses", float(self.traces_linked))
        table.add_row("invalidations", float(self.traces_invalidated))
        table.add_row("anchor replacements", float(self.anchors_replaced))
        table.add_row("replacements / construction",
                      self.replacements_per_construction)
        table.add_row("invalidations / 1k dispatches",
                      self.invalidations_per_thousand_dispatches)
        return table


def stability_report(stats) -> StabilityReport:
    """Build a StabilityReport from a RunStats."""
    return StabilityReport(
        traces_constructed=stats.traces_constructed,
        traces_linked=stats.traces_linked,
        traces_invalidated=stats.traces_invalidated,
        anchors_replaced=stats.anchors_replaced,
        signals=stats.signals,
        dispatches=stats.total_dispatches,
    )


def speculative_speedup(completion_rate: float,
                        on_path_speedup: float,
                        off_path_slowdown: float) -> float:
    """The paper's Section 5.2 trade-off model.

    A trace optimization that speeds the completion path by
    `on_path_speedup` but costs `off_path_slowdown` on early exits
    yields an overall speedup of::

        1 / (p / on + (1 - p) * off)

    The paper's example: with completion over 99%, doubling the main
    path while paying 10x off-path still improves performance by 40%.
    """
    if not 0.0 <= completion_rate <= 1.0:
        raise ValueError("completion_rate must be in [0, 1]")
    if on_path_speedup <= 0 or off_path_slowdown <= 0:
        raise ValueError("speedup factors must be positive")
    denominator = (completion_rate / on_path_speedup
                   + (1.0 - completion_rate) * off_path_slowdown)
    return 1.0 / denominator

"""ASCII table rendering for experiment reports."""

from __future__ import annotations

from dataclasses import dataclass, field


def format_cell(value, spec: str = "") -> str:
    """Format one cell: None -> '-', floats honour the given spec."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        return format(value, spec or ".2f")
    return str(value)


@dataclass(slots=True)
class Table:
    """A titled grid with a header row and per-column float formats."""

    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    formats: list[str] | None = None
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, header has "
                f"{len(self.headers)}")
        self.rows.append(list(cells))

    def formatted_rows(self) -> list[list[str]]:
        formats = self.formats or [""] * len(self.headers)
        return [[format_cell(cell, formats[i])
                 for i, cell in enumerate(row)]
                for row in self.rows]

    def render(self) -> str:
        grid = [list(self.headers)] + self.formatted_rows()
        widths = [max(len(row[i]) for row in grid)
                  for i in range(len(self.headers))]

        def line(row, pad=" "):
            return " | ".join(cell.rjust(width) if i else cell.ljust(width)
                              for i, (cell, width)
                              in enumerate(zip(row, widths)))

        divider = "-+-".join("-" * w for w in widths)
        out = [self.title, "=" * len(self.title), line(grid[0]), divider]
        out.extend(line(row) for row in grid[1:])
        for note in self.notes:
            out.append(f"  note: {note}")
        return "\n".join(out)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering (for reports/issues)."""
        grid = self.formatted_rows()
        out = [f"**{self.title}**", "",
               "| " + " | ".join(self.headers) + " |",
               "|" + "|".join("---" for _ in self.headers) + "|"]
        out.extend("| " + " | ".join(row) + " |" for row in grid)
        for note in self.notes:
            out.append(f"\n*{note}*")
        return "\n".join(out)

    def column(self, header: str) -> list:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row_map(self) -> dict:
        """First-column value -> row (for tests and comparisons)."""
        return {row[0]: row for row in self.rows}


def comparison_table(title: str, benchmarks: list[str],
                     measured: dict[str, float],
                     paper: dict[str, float | None],
                     value_format: str = ".1f") -> Table:
    """Two-column measured-vs-paper table used by EXPERIMENTS.md."""
    table = Table(title, ["benchmark", "measured", "paper"],
                  formats=["", value_format, value_format])
    for name in benchmarks:
        table.add_row(name, measured.get(name), paper.get(name))
    return table

"""Metrics: run statistics, dependent values, calibration, rendering."""

from .calibration import (CalibrationReport, StabilityReport,
                          calibration_report, speculative_speedup,
                          stability_report)
from .collectors import DispatchModelStats, OverheadSample, RunStats
from .dump import bcg_to_dict, bcg_to_dot, run_to_dict, run_to_json
from .report import Table, comparison_table, format_cell

__all__ = ["CalibrationReport", "StabilityReport", "calibration_report",
           "speculative_speedup",
           "stability_report", "DispatchModelStats", "OverheadSample",
           "RunStats", "Table", "comparison_table", "format_cell",
           "bcg_to_dict", "bcg_to_dot", "run_to_dict", "run_to_json"]

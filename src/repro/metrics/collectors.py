"""Run-level statistics and the paper's five dependent values.

Section 5.2 of the paper defines: average (executed) trace length,
instruction stream coverage, dynamic trace completion rate, state
signal rate, and trace event interval.  :class:`RunStats` collects the
raw counters a trace-dispatching run produces and derives each
dependent value as a property.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class RunStats:
    """Counters from one trace-dispatching execution."""

    instr_total: int = 0
    block_dispatches: int = 0       # ordinary basic-block dispatches
    trace_dispatches: int = 0       # whole-trace dispatches
    trace_entries: int = 0
    trace_completions: int = 0
    trace_chains: int = 0           # trace dispatch right after a trace
    completed_blocks: int = 0       # blocks executed in completed traces
    partial_blocks: int = 0         # blocks executed in early-exited traces
    instr_in_completed: int = 0
    instr_in_partial: int = 0
    signals: int = 0
    signals_late: int = 0           # signals in the second half of the run
    resignals: int = 0              # repeat signals (BCG churn)
    traces_constructed: int = 0
    traces_linked: int = 0
    traces_invalidated: int = 0
    anchors_replaced: int = 0
    bcg_nodes: int = 0
    bcg_edges: int = 0
    decays: int = 0
    traces_in_cache: int = 0
    runtime_seconds: float = 0.0
    # Trace-optimizer extension (config.optimize_traces):
    traces_compiled: int = 0
    opt_static_savings: int = 0    # instructions removed from trace IR
    opt_dynamic_savings: int = 0   # original instrs skipped at runtime
    # Template-codegen backend (config.compile_backend == "py").  All
    # fields stay zeroed when the backend is off, so table builders can
    # read them unconditionally.
    codegen_traces_compiled: int = 0   # specialized functions installed
    codegen_uncompilable: int = 0      # traces the backend declined
    codegen_cache_hits: int = 0        # code objects shared by shape
    codegen_cache_misses: int = 0      # distinct shapes compiled
    codegen_source_bytes: int = 0      # generated Python source, total
    codegen_compile_seconds: float = 0.0
    codegen_side_exits: int = 0        # guard exits in generated code
    # Trace-to-trace linking (config.trace_linking, with the optimizer
    # on).  Zeroed when linking is off, same convention as above.
    links_installed: int = 0           # exit->trace links installed
    linked_transfers: int = 0          # dispatches taken through a link
    superblock_traces: int = 0         # k-iteration superblocks grown
    # Observability layer (repro.obs).  Zeroed when no Observability
    # is attached, mirroring the codegen convention.
    events_emitted: int = 0            # bus events delivered
    events_suppressed: int = 0         # emits short-circuited (no sub)
    obs_snapshots: int = 0             # periodic snapshots taken

    # ------------------------------------------------------------------
    @property
    def total_dispatches(self) -> int:
        """Dispatches performed by the trace-dispatching interpreter."""
        return self.block_dispatches + self.trace_dispatches

    @property
    def baseline_dispatches(self) -> int:
        """Dispatches a plain threaded interpreter would have performed
        (every block, whether it ran inside a trace or not)."""
        return (self.block_dispatches + self.completed_blocks
                + self.partial_blocks)

    @property
    def average_trace_length(self) -> float:
        """Paper dependent value 1: mean executed length (in basic
        blocks) of traces that ran to completion."""
        if self.trace_completions == 0:
            return 0.0
        return self.completed_blocks / self.trace_completions

    @property
    def coverage(self) -> float:
        """Paper dependent value 2: fraction of all executed
        instructions that ran inside *completed* traces."""
        if self.instr_total == 0:
            return 0.0
        return self.instr_in_completed / self.instr_total

    @property
    def cache_coverage(self) -> float:
        """Coverage including partially executed traces (the paper's
        '90.7%' variant)."""
        if self.instr_total == 0:
            return 0.0
        return (self.instr_in_completed + self.instr_in_partial) \
            / self.instr_total

    @property
    def completion_rate(self) -> float:
        """Paper dependent value 3: completed / entered."""
        if self.trace_entries == 0:
            return 1.0
        return self.trace_completions / self.trace_entries

    @property
    def dispatches_per_signal(self) -> float:
        """Paper dependent value 4 (Table IV reports thousands)."""
        if self.signals == 0:
            return float("inf")
        return self.total_dispatches / self.signals

    @property
    def chain_rate(self) -> float:
        """Fraction of trace dispatches that immediately followed
        another trace dispatch (back-to-back trace execution)."""
        if self.trace_dispatches == 0:
            return 0.0
        return self.trace_chains / self.trace_dispatches

    @property
    def linked_transfer_rate(self) -> float:
        """Fraction of trace dispatches entered through an installed
        trace-to-trace link (no controller round-trip)."""
        if self.trace_dispatches == 0:
            return 0.0
        return self.linked_transfers / self.trace_dispatches

    @property
    def steady_state_dispatches_per_signal(self) -> float:
        """Dispatches per signal counting only second-half signals.

        Our runs are orders of magnitude shorter than the paper's SPEC
        runs, so warm-up signals dominate the raw Table IV ratio; the
        steady-state variant exposes the paper's point that stable code
        stops signalling entirely.
        """
        if self.signals_late == 0:
            return float("inf")
        return (self.total_dispatches / 2) / self.signals_late

    @property
    def trace_events(self) -> int:
        """Signals plus traces constructed (Section 5.2)."""
        return self.signals + self.traces_constructed

    @property
    def dispatches_per_trace_event(self) -> float:
        """Paper dependent value 5 (Table V reports thousands)."""
        if self.trace_events == 0:
            return float("inf")
        return self.total_dispatches / self.trace_events

    @property
    def dispatch_reduction(self) -> float:
        """Fraction of baseline dispatches eliminated by trace dispatch."""
        baseline = self.baseline_dispatches
        if baseline == 0:
            return 0.0
        return 1.0 - self.total_dispatches / baseline

    def as_dict(self) -> dict:
        """Raw counters plus derived values, for reports and tests."""
        raw = {name: getattr(self, name)
               for name in self.__dataclass_fields__}
        raw.update(
            total_dispatches=self.total_dispatches,
            baseline_dispatches=self.baseline_dispatches,
            average_trace_length=self.average_trace_length,
            coverage=self.coverage,
            cache_coverage=self.cache_coverage,
            completion_rate=self.completion_rate,
            dispatches_per_signal=self.dispatches_per_signal,
            dispatches_per_trace_event=self.dispatches_per_trace_event,
            dispatch_reduction=self.dispatch_reduction,
            linked_transfer_rate=self.linked_transfer_rate,
        )
        return raw


@dataclass(slots=True)
class DispatchModelStats:
    """Figure 1 / Figure 2 data: dispatch counts of the three execution
    models on the same program."""

    instructions: int = 0
    instruction_dispatches: int = 0   # switch interpreter (Figure 1)
    block_dispatches: int = 0         # threaded interpreter (Figure 2)
    trace_model_dispatches: int = 0   # trace-dispatching interpreter

    @property
    def block_over_instruction(self) -> float:
        if self.instruction_dispatches == 0:
            return 0.0
        return self.block_dispatches / self.instruction_dispatches

    @property
    def trace_over_block(self) -> float:
        if self.block_dispatches == 0:
            return 0.0
        return self.trace_model_dispatches / self.block_dispatches


@dataclass(slots=True)
class OverheadSample:
    """One Table VI row: timed threaded execution with and without the
    profiler hook."""

    benchmark: str = ""
    base_seconds: float = 0.0
    profiled_seconds: float = 0.0
    dispatches: int = 0

    @property
    def overhead_seconds(self) -> float:
        return max(0.0, self.profiled_seconds - self.base_seconds)

    @property
    def overhead_per_million_dispatches(self) -> float:
        if self.dispatches == 0:
            return 0.0
        return self.overhead_seconds / (self.dispatches / 1e6)

    @property
    def relative_overhead(self) -> float:
        if self.base_seconds == 0.0:
            return 0.0
        return self.overhead_seconds / self.base_seconds

"""One-shot experiment report: every table, rendered as markdown.

``python -m repro report`` (or :func:`build_report`) regenerates the
full evaluation — Figures 1/2, Tables I-VII — at the requested size and
emits a self-contained markdown document with the paper's reference
values alongside, suitable for committing or diffing across changes.
"""

from __future__ import annotations

import time

from .. import __version__
from .tables import (PAPER_TABLE1, PAPER_TABLE2, PAPER_TABLE4,
                     generate_all, paper_table)

_PAPER_REFERENCES = {
    "table1": ("Paper Table I (reference)", PAPER_TABLE1, ".1f"),
    "table2": ("Paper Table II (reference)", PAPER_TABLE2, ".1%"),
    "table4": ("Paper Table IV (reference)", PAPER_TABLE4, ".1f"),
}

_SECTIONS = (
    ("figures", "Figures 1 & 2 — dispatches per execution model"),
    ("table1", "Table I — trace length vs. threshold"),
    ("table2", "Table II — instruction stream coverage vs. threshold"),
    ("table3", "Table III — trace completion rate vs. threshold"),
    ("table4", "Table IV — dispatches per state-change signal"),
    ("table5", "Table V — dispatches per trace event vs. delay"),
    ("table6", "Table VI — profiler overhead per block dispatch"),
    ("table7", "Table VII — predicted trace-dispatch overhead"),
)


def build_report(size: str = "small", repeats: int = 1) -> str:
    """Regenerate everything and return the markdown document."""
    started = time.perf_counter()
    tables = generate_all(size, repeats=repeats)
    elapsed = time.perf_counter() - started

    lines = [
        "# Trace cache evaluation report",
        "",
        f"Reproduction of Berndl & Hendren (CGO 2003), repro "
        f"v{__version__}; workload size `{size}`; generated in "
        f"{elapsed:.0f}s.",
        "",
    ]
    for key, heading in _SECTIONS:
        lines.append(f"## {heading}")
        lines.append("")
        lines.append(tables[key].to_markdown())
        lines.append("")
        reference = _PAPER_REFERENCES.get(key)
        if reference is not None:
            title, data, fmt = reference
            lines.append(paper_table(title, data, fmt).to_markdown())
            lines.append("")
    return "\n".join(lines)


if __name__ == "__main__":
    import sys
    size = sys.argv[1] if len(sys.argv) > 1 else "small"
    print(build_report(size))

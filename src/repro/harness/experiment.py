"""Experiment primitives: single runs, sweeps, and timing measurements.

All functions key workloads by (name, size) through the registry and
return the metrics objects defined in :mod:`repro.metrics.collectors`.
The :class:`ExperimentMatrix` caches runs so a harness regenerating
several tables does not re-execute identical configurations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..baselines import (DynamoSelector, ReplaySelector, TraceSelector,
                         WhaleySelector, run_with_selector)
from ..core import Profiler, TraceCacheConfig, TraceController
from ..jvm import SwitchInterpreter, ThreadedInterpreter
from ..metrics.collectors import (DispatchModelStats, OverheadSample,
                                  RunStats)
from ..workloads import WORKLOAD_NAMES, load_workload


@dataclass(slots=True)
class ExperimentResult:
    workload: str
    size: str
    config: TraceCacheConfig
    stats: RunStats
    result_value: object


def run_experiment(workload: str, size: str = "small",
                   threshold: float = 0.97, start_state_delay: int = 64,
                   **config_overrides) -> ExperimentResult:
    """One trace-dispatching run of a workload at given parameters."""
    config = TraceCacheConfig(threshold=threshold,
                              start_state_delay=start_state_delay,
                              **config_overrides)
    program = load_workload(workload, size)
    controller = TraceController(program, config)
    started = time.perf_counter()
    result = controller.run()
    result.stats.runtime_seconds = time.perf_counter() - started
    return ExperimentResult(workload, size, config, result.stats,
                            result.machine.result)


def run_baseline(workload: str, scheme: str, size: str = "small",
                 **selector_kwargs) -> tuple[RunStats, dict]:
    """Run a baseline selection scheme; returns (stats, description)."""
    selector = make_selector(scheme, **selector_kwargs)
    program = load_workload(workload, size)
    _machine, stats = run_with_selector(program, selector)
    return stats, selector.describe()


def make_selector(scheme: str, **kwargs) -> TraceSelector:
    factories = {
        "dynamo": DynamoSelector,
        "replay": ReplaySelector,
        "whaley": WhaleySelector,
    }
    if scheme not in factories:
        raise KeyError(f"unknown baseline scheme {scheme!r}; "
                       f"choose from {sorted(factories)}")
    return factories[scheme](**kwargs)


def run_dispatch_models(workload: str, size: str = "small",
                        threshold: float = 0.97,
                        start_state_delay: int = 64) -> DispatchModelStats:
    """Figure 1/2 data: dispatch counts of the three execution models."""
    program = load_workload(workload, size)
    switch = SwitchInterpreter(program)
    switch.run()
    threaded = ThreadedInterpreter(program)
    threaded.run()
    controller = TraceController(program, TraceCacheConfig(
        threshold=threshold, start_state_delay=start_state_delay))
    traced = controller.run()
    return DispatchModelStats(
        instructions=switch.instr_count,
        instruction_dispatches=switch.dispatch_count,
        block_dispatches=threaded.dispatch_count,
        trace_model_dispatches=traced.stats.total_dispatches,
    )


def measure_profiler_overhead(workload: str, size: str = "small",
                              repeats: int = 3,
                              config: TraceCacheConfig | None = None,
                              ) -> OverheadSample:
    """Table VI measurement: threaded interpreter timed with and
    without the profiler hook (profiling only — no trace dispatch,
    exactly the paper's modified-SableVM experiment)."""
    program = load_workload(workload, size)
    config = config or TraceCacheConfig()

    def profiled_run() -> float:
        profiler = Profiler(config)   # no signal sink: profiling only

        def hook(prev, cur):
            if prev is not None:
                profiler.advance(prev.bid, cur)
        return _time_threaded(program, hook)

    # Interleave base/profiled samples so transient machine load hits
    # both configurations equally; keep the per-configuration minimum.
    base_samples = []
    profiled_samples = []
    for _ in range(repeats):
        base_samples.append(_time_threaded(program, None))
        profiled_samples.append(profiled_run())
    base = min(base_samples)
    profiled = min(profiled_samples)
    interpreter = ThreadedInterpreter(program)
    interpreter.run()
    return OverheadSample(
        benchmark=workload,
        base_seconds=base,
        profiled_seconds=profiled,
        dispatches=interpreter.dispatch_count,
    )


def _time_threaded(program, hook) -> float:
    interpreter = ThreadedInterpreter(program)
    started = time.perf_counter()
    interpreter.run(dispatch_hook=hook)
    return time.perf_counter() - started


class ExperimentMatrix:
    """Lazy, cached (workload, threshold, delay) -> ExperimentResult."""

    def __init__(self, size: str = "small",
                 workloads: tuple[str, ...] = WORKLOAD_NAMES) -> None:
        self.size = size
        self.workloads = workloads
        self._cache: dict[tuple, ExperimentResult] = {}

    def get(self, workload: str, threshold: float = 0.97,
            start_state_delay: int = 64) -> ExperimentResult:
        key = (workload, threshold, start_state_delay)
        result = self._cache.get(key)
        if result is None:
            result = run_experiment(workload, self.size, threshold,
                                    start_state_delay)
            self._cache[key] = result
        return result

    def sweep_thresholds(self, thresholds,
                         start_state_delay: int = 64) -> dict:
        """{threshold: {workload: ExperimentResult}}"""
        return {t: {w: self.get(w, t, start_state_delay)
                    for w in self.workloads}
                for t in thresholds}

    def sweep_delays(self, delays, threshold: float = 0.97) -> dict:
        """{delay: {workload: ExperimentResult}}"""
        return {d: {w: self.get(w, threshold, d)
                    for w in self.workloads}
                for d in delays}

"""Regeneration of every table and figure in the paper's evaluation.

Each ``tableN`` function reproduces the corresponding paper table on
our substrate (same orientation: one row per parameter value, one
column per benchmark plus the average); each ``tableN_paper`` returns
the values the paper reports, where the paper's text preserves them
(Tables III and V survive only as images in the source text — their
entries are None and the accompanying notes quote the paper's prose
claims, which EXPERIMENTS.md checks instead).
"""

from __future__ import annotations

from ..metrics.report import Table
from ..workloads import WORKLOAD_NAMES
from .experiment import (ExperimentMatrix, measure_profiler_overhead,
                         run_dispatch_models)

THRESHOLDS = (1.0, 0.99, 0.98, 0.97, 0.95)
DELAYS = (1, 64, 4096)

# Paper values, keyed by threshold then benchmark (None = unreadable in
# the source text).  Benchmarks in paper order.
PAPER_BENCHMARKS = ("compress", "javac", "raytrace", "mpegaudio", "soot",
                    "scimark")

PAPER_TABLE1 = {
    1.0:  {"compress": 5.0, "javac": 2.9, "raytrace": 2.9,
           "mpegaudio": 3.1, "soot": 3.2, "scimark": 10.8,
           "average": None},
    0.99: {"compress": 12.0, "javac": 4.0, "raytrace": 8.0,
           "mpegaudio": 3.4, "soot": 3.9, "scimark": 10.8,
           "average": 7.0},
    0.98: {"compress": 12.0, "javac": None, "raytrace": 8.1,
           "mpegaudio": 3.4, "soot": 4.3, "scimark": 10.8,
           "average": 7.1},
    0.97: {"compress": 12.1, "javac": 4.3, "raytrace": 8.4,
           "mpegaudio": 4.8, "soot": 4.5, "scimark": 10.8,
           "average": 7.5},
    0.95: {"compress": None, "javac": 5.9, "raytrace": 8.5,
           "mpegaudio": 5.3, "soot": 4.8, "scimark": 10.8,
           "average": 7.8},
}

PAPER_TABLE2 = {
    1.0:  {"compress": 0.78, "javac": 0.72, "raytrace": 0.79,
           "mpegaudio": 0.90, "soot": 0.76, "scimark": 0.98,
           "average": 0.821},
    0.99: {"compress": 0.90, "javac": 0.73, "raytrace": 0.82,
           "mpegaudio": 0.90, "soot": 0.80, "scimark": 0.98,
           "average": 0.855},
    0.98: {"compress": 0.90, "javac": 0.76, "raytrace": 0.79,
           "mpegaudio": 0.92, "soot": 0.81, "scimark": 0.98,
           "average": 0.860},
    0.97: {"compress": 0.91, "javac": 0.79, "raytrace": 0.80,
           "mpegaudio": 0.92, "soot": 0.83, "scimark": 0.98,
           "average": 0.871},
    0.95: {"compress": 0.90, "javac": 0.77, "raytrace": 0.80,
           "mpegaudio": 0.90, "soot": 0.83, "scimark": 0.98,
           "average": 0.863},
}

# Table IV: thousands of dispatches per state-change signal.
PAPER_TABLE4 = {
    1.0:  {"compress": 37.3, "javac": 10.4, "raytrace": 39.4,
           "mpegaudio": 30.0, "soot": 11.5, "scimark": 11.9,
           "average": 23.4},
    0.99: {"compress": 39.8, "javac": 11.0, "raytrace": 41.7,
           "mpegaudio": 31.6, "soot": 10.5, "scimark": 369.3,
           "average": 83.9},
    0.98: {"compress": 40.5, "javac": 11.1, "raytrace": 43.3,
           "mpegaudio": 33.4, "soot": 10.5, "scimark": 415.5,
           "average": 92.3},
    0.97: {"compress": 38.0, "javac": 11.1, "raytrace": 43.3,
           "mpegaudio": 31.6, "soot": 10.5, "scimark": 554.0,
           "average": 114.6},
    0.95: {"compress": 40.5, "javac": 10.9, "raytrace": 43.3,
           "mpegaudio": 34.3, "soot": 10.7, "scimark": 415.5,
           "average": 92.5},
}

# Table VI: (base seconds, dispatches in millions, profiled seconds,
# overhead seconds per million dispatches) on the paper's 1.06GHz box.
PAPER_TABLE6 = {
    "compress": (248, 1906, 303, 0.029),
    "javac": (123, 621, 158, 0.058),
    "raytrace": (204, 866, 269, 0.075),
    "mpegaudio": (240, 2404, 312, 0.030),
    "soot": (96, 513, 124, 0.055),
    "scimark": (261, 3324, 321, 0.018),
}

# Table VII: (trace dispatches in millions, overhead/M, expected
# overhead seconds, % overhead).
PAPER_TABLE7 = {
    "compress": (142, 0.029, 4.12, 0.017),
    "javac": (144, 0.058, 8.35, 0.068),
    "raytrace": (103, 0.075, 7.73, 0.038),
    "mpegaudio": (500, 0.030, 15.00, 0.062),
    "soot": (114, 0.055, 6.27, 0.065),
    "scimark": (308, 0.018, 5.54, 0.021),
}

# Our workload name <-> the paper benchmark it mirrors.
NAME_MAP = dict(zip(WORKLOAD_NAMES, PAPER_BENCHMARKS))


def _average(values: list[float]) -> float:
    return sum(values) / len(values)


def _sweep_table(title: str, matrix: ExperimentMatrix, thresholds,
                 delay: int, metric, fmt: str) -> Table:
    headers = ["threshold", *matrix.workloads, "average"]
    table = Table(title, headers,
                  formats=["", *([fmt] * (len(matrix.workloads) + 1))])
    for threshold in thresholds:
        values = [metric(matrix.get(w, threshold, delay).stats)
                  for w in matrix.workloads]
        table.add_row(f"{threshold:.0%}", *values, _average(values))
    return table


def table1(matrix: ExperimentMatrix, thresholds=THRESHOLDS,
           delay: int = 64) -> Table:
    """Table I: average executed trace length (blocks) vs threshold."""
    return _sweep_table("Table I: Trace Length vs. Threshold",
                        matrix, thresholds, delay,
                        lambda s: s.average_trace_length, ".1f")


def table2(matrix: ExperimentMatrix, thresholds=THRESHOLDS,
           delay: int = 64) -> Table:
    """Table II: instruction stream coverage vs threshold."""
    return _sweep_table(
        "Table II: Instruction Stream Coverage vs. Threshold",
        matrix, thresholds, delay, lambda s: s.coverage, ".1%")


def table3(matrix: ExperimentMatrix, thresholds=THRESHOLDS,
           delay: int = 64) -> Table:
    """Table III: dynamic trace completion rate vs threshold."""
    table = _sweep_table(
        "Table III: Trace Completion Rate vs. Threshold",
        matrix, thresholds, delay, lambda s: s.completion_rate, ".1%")
    table.notes.append(
        "paper: for thresholds >= 97% the completion rate is high "
        "enough to justify searching for completely executing traces")
    return table


def table4(matrix: ExperimentMatrix, thresholds=THRESHOLDS,
           delay: int = 64) -> Table:
    """Table IV: thousands of dispatches per state-change signal."""
    return _sweep_table(
        "Table IV: Thousands of Dispatches per State Change Signal",
        matrix, thresholds, delay,
        lambda s: s.dispatches_per_signal / 1000.0, ".1f")


def table5(matrix: ExperimentMatrix, delays=DELAYS,
           threshold: float = 0.97) -> Table:
    """Table V: thousands of dispatches per trace event vs delay."""
    headers = ["delay", *matrix.workloads, "average"]
    table = Table(
        "Table V: Thousands of Dispatches per Trace Event (97%)",
        headers, formats=["", *([".1f"] * (len(matrix.workloads) + 1))])
    for delay in delays:
        values = [matrix.get(w, threshold, delay).stats
                  .dispatches_per_trace_event / 1000.0
                  for w in matrix.workloads]
        table.add_row(str(delay), *values, _average(values))
    table.notes.append(
        "paper: the event interval grows dramatically from delay 1 to "
        "4096; at 4096 it dwarfs the 256-dispatch periodic-check "
        "interval")
    return table


def table6(size: str = "small", repeats: int = 3,
           workloads=WORKLOAD_NAMES) -> Table:
    """Table VI: profiler overhead per basic-block dispatch (timed)."""
    table = Table(
        "Table VI: Profiler Overhead per Block Dispatch",
        ["benchmark", "base (s)", "dispatches (M)", "profiled (s)",
         "overhead per 1e6 disp (s)", "relative"],
        formats=["", ".3f", ".3f", ".3f", ".4f", ".1%"])
    for name in workloads:
        sample = measure_profiler_overhead(name, size, repeats)
        table.add_row(name, sample.base_seconds,
                      sample.dispatches / 1e6, sample.profiled_seconds,
                      sample.overhead_per_million_dispatches,
                      sample.relative_overhead)
    table.notes.append(
        "paper: 0.018-0.075 s per million dispatches on a 1.06 GHz "
        "machine; profiling costs ~28.6% of a block dispatch")
    return table


def table7(matrix: ExperimentMatrix, size: str = "small",
           repeats: int = 3) -> Table:
    """Table VII: predicted overhead of the trace-dispatching model.

    As in the paper, the per-dispatch profiling cost from Table VI is
    multiplied by the number of dispatches the *trace-dispatching*
    model performs, then compared against the unprofiled runtime.
    """
    table = Table(
        "Table VII: Profiler Dispatch Overhead (trace model)",
        ["benchmark", "trace-model dispatches (M)",
         "overhead per 1e6 disp (s)", "expected overhead (s)",
         "% overhead"],
        formats=["", ".3f", ".4f", ".4f", ".1%"])
    for name in matrix.workloads:
        sample = measure_profiler_overhead(name, size, repeats)
        run = matrix.get(name, 0.97, 64)
        dispatches = run.stats.total_dispatches
        expected = (dispatches / 1e6) \
            * sample.overhead_per_million_dispatches
        percent = (expected / sample.base_seconds
                   if sample.base_seconds else 0.0)
        table.add_row(name, dispatches / 1e6,
                      sample.overhead_per_million_dispatches,
                      expected, percent)
    table.notes.append(
        "paper: expected overhead everywhere below 7%, averaging 4.5%")
    return table


def figures_dispatch_models(size: str = "small",
                            workloads=WORKLOAD_NAMES) -> Table:
    """Figures 1 and 2 (plus the trace model): dispatches per model."""
    table = Table(
        "Figures 1 & 2: Dispatches per Execution Model",
        ["benchmark", "instructions", "per-instruction (Fig.1)",
         "per-block (Fig.2)", "per-trace (this paper)",
         "block/instr", "trace/block"],
        formats=["", "", "", "", "", ".3f", ".3f"])
    for name in workloads:
        model = run_dispatch_models(name, size)
        table.add_row(name, model.instructions,
                      model.instruction_dispatches,
                      model.block_dispatches,
                      model.trace_model_dispatches,
                      model.block_over_instruction,
                      model.trace_over_block)
    return table


def paper_table(title: str, data: dict, fmt: str = ".1f") -> Table:
    """Render one of the PAPER_TABLE* dicts in sweep orientation."""
    headers = ["threshold", *PAPER_BENCHMARKS, "average"]
    table = Table(title, headers,
                  formats=["", *([fmt] * (len(PAPER_BENCHMARKS) + 1))])
    for threshold, row in data.items():
        table.add_row(f"{threshold:.0%}",
                      *[row[b] for b in PAPER_BENCHMARKS],
                      row.get("average"))
    return table


def generate_all(size: str = "small", repeats: int = 1) -> dict[str, Table]:
    """Every table and figure, keyed by experiment id."""
    matrix = ExperimentMatrix(size)
    return {
        "figures": figures_dispatch_models(size),
        "table1": table1(matrix),
        "table2": table2(matrix),
        "table3": table3(matrix),
        "table4": table4(matrix),
        "table5": table5(matrix),
        "table6": table6(size, repeats),
        "table7": table7(matrix, size, repeats),
    }

"""Experiment harness: runs, sweeps, and paper-table regeneration."""

from .goldens import collect, compare, load_goldens, write_goldens
from .report import build_report
from .experiment import (ExperimentMatrix, ExperimentResult, make_selector,
                         measure_profiler_overhead, run_baseline,
                         run_dispatch_models, run_experiment)
from .tables import (DELAYS, NAME_MAP, PAPER_BENCHMARKS, PAPER_TABLE1,
                     PAPER_TABLE2, PAPER_TABLE4, PAPER_TABLE6, PAPER_TABLE7,
                     THRESHOLDS, figures_dispatch_models, generate_all,
                     paper_table, table1, table2, table3, table4, table5,
                     table6, table7)

__all__ = [
    "ExperimentMatrix", "ExperimentResult", "make_selector",
    "measure_profiler_overhead", "run_baseline", "run_dispatch_models",
    "run_experiment", "DELAYS", "NAME_MAP", "PAPER_BENCHMARKS",
    "PAPER_TABLE1", "PAPER_TABLE2", "PAPER_TABLE4", "PAPER_TABLE6",
    "PAPER_TABLE7", "THRESHOLDS", "figures_dispatch_models",
    "generate_all", "paper_table", "table1", "table2", "table3",
    "build_report", "collect", "compare", "load_goldens", "write_goldens",
    "table4", "table5", "table6", "table7",
]

"""Golden regression data: exact expected results of every workload.

The workloads are deterministic, so their checksums and instruction
counts are *exact* contracts: any change to the VM's semantics, the
compiler's code generation, or a workload's source shows up as a golden
mismatch.  `tests/goldens/workloads.json` pins them; regenerate with::

    python -m repro.harness.goldens tests/goldens/workloads.json
"""

from __future__ import annotations

import json
from pathlib import Path

from ..jvm import ThreadedInterpreter
from ..workloads import WORKLOAD_NAMES, load_workload

DEFAULT_SIZES = ("tiny",)


def collect(sizes=DEFAULT_SIZES) -> dict:
    """Current (result, instruction count, block dispatches) for every
    workload at the given sizes."""
    data: dict = {}
    for name in WORKLOAD_NAMES:
        data[name] = {}
        for size in sizes:
            program = load_workload(name, size)
            interpreter = ThreadedInterpreter(program)
            machine = interpreter.run()
            data[name][size] = {
                "result": machine.result,
                "instructions": machine.instr_count,
                "dispatches": interpreter.dispatch_count,
            }
    return data


def write_goldens(path, sizes=DEFAULT_SIZES) -> dict:
    data = collect(sizes)
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(json.dumps(data, indent=2, sort_keys=True)
                          + "\n")
    return data


def load_goldens(path) -> dict:
    return json.loads(Path(path).read_text())


def compare(expected: dict, actual: dict) -> list[str]:
    """Human-readable mismatch descriptions (empty = all good)."""
    problems = []
    for name, sizes in expected.items():
        for size, fields in sizes.items():
            got = actual.get(name, {}).get(size)
            if got is None:
                problems.append(f"{name}/{size}: missing from actual")
                continue
            for field, value in fields.items():
                if got.get(field) != value:
                    problems.append(
                        f"{name}/{size}.{field}: expected {value}, "
                        f"got {got.get(field)}")
    return problems


if __name__ == "__main__":
    import sys
    target = sys.argv[1] if len(sys.argv) > 1 else \
        "tests/goldens/workloads.json"
    written = write_goldens(target)
    print(f"wrote goldens for {len(written)} workloads to {target}")

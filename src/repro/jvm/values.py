"""Runtime value semantics for the JVM-like virtual machine.

The VM is dynamically typed internally (the verifier provides static
checking), but integer arithmetic follows Java's 32-bit two's-complement
wrap-around semantics so that workloads behave like their Java namesakes.
"""

from __future__ import annotations

import math

INT_MIN = -(1 << 31)
INT_MAX = (1 << 31) - 1
_INT_MASK = (1 << 32) - 1
_SIGN_BIT = 1 << 31


def wrap_int(value: int) -> int:
    """Wrap a Python int to Java 32-bit two's-complement range."""
    value &= _INT_MASK
    if value & _SIGN_BIT:
        value -= 1 << 32
    return value


def java_idiv(a: int, b: int) -> int:
    """Java integer division: truncates toward zero, wraps INT_MIN / -1."""
    if b == 0:
        raise ZeroDivisionError("/ by zero")
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return wrap_int(q)


def java_irem(a: int, b: int) -> int:
    """Java integer remainder: sign follows the dividend."""
    if b == 0:
        raise ZeroDivisionError("% by zero")
    return a - java_idiv(a, b) * b


def java_ishl(a: int, b: int) -> int:
    """Java `<<`: shift distance masked to 5 bits, result wrapped."""
    return wrap_int(a << (b & 31))


def java_ishr(a: int, b: int) -> int:
    """Java `>>` (arithmetic shift right)."""
    return wrap_int(a >> (b & 31))


def java_iushr(a: int, b: int) -> int:
    """Java `>>>` (logical shift right on the 32-bit pattern)."""
    return wrap_int((a & _INT_MASK) >> (b & 31))


def java_fdiv(a: float, b: float) -> float:
    """Java float division: ``x / 0.0`` is NaN when x is zero *or NaN*,
    signed infinity otherwise; nonzero divisors divide normally.
    The infinity's sign is the XOR of the operand signs, so the sign of
    a zero divisor matters: ``1.0 / -0.0 == -inf``."""
    if b == 0.0:
        if a == 0.0 or a != a:
            return float("nan")
        negative = (a < 0) != (math.copysign(1.0, b) < 0)
        return float("-inf") if negative else float("inf")
    return a / b


def java_f2i(value: float) -> int:
    """Java f2i: truncate toward zero, saturating at int bounds, NaN -> 0."""
    if value != value:  # NaN
        return 0
    if value >= INT_MAX:
        return INT_MAX
    if value <= INT_MIN:
        return INT_MIN
    return int(value)


def fcmp(a: float, b: float, nan_result: int) -> int:
    """Java fcmpl/fcmpg semantics: -1/0/1, `nan_result` on any NaN."""
    if a != a or b != b:
        return nan_result
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


def is_int(value: object) -> bool:
    """True for VM int values (bool excluded: the VM has no bool type)."""
    return type(value) is int


def is_float(value: object) -> bool:
    return type(value) is float


def default_value(type_name: str):
    """The JVM default for a field/array slot of the given type descriptor."""
    if type_name == "int" or type_name == "boolean":
        return 0
    if type_name == "float":
        return 0.0
    return None

"""Basic-block discovery for the direct-threaded-inlining model.

A *basic block* here is the unit the threaded interpreter dispatches:
a maximal straight-line instruction run.  Following SableVM's selective
inlining model, blocks end at:

- conditional branches, gotos and table switches,
- method invocations (inlining stops at call edges, which is what lets
  traces cross method boundaries),
- returns and throws,
- any instruction whose successor is a branch target or exception
  handler (the successor starts a new block).
"""

from __future__ import annotations

from dataclasses import dataclass

from .bytecode import (
    BLOCK_TERMINATOR_OPS, CONDITIONAL_BRANCH_OPS, INVOKE_OPS, Op,
    RETURN_OPS, branch_targets, can_fall_through,
)
from .classfile import MethodDef
from .errors import VerifyError


# Successor kinds, stored on BasicBlock.kind.
KIND_COND = "cond"          # conditional branch: target or fallthrough
KIND_GOTO = "goto"          # unconditional: target
KIND_SWITCH = "switch"      # tableswitch: one of targets or default
KIND_INVOKE = "invoke"      # call: callee entry, then continuation
KIND_RETURN = "return"      # pop frame
KIND_THROW = "throw"        # unwind to handler
KIND_FALL = "fall"          # block split by a leader: next block


@dataclass(eq=False)
class BasicBlock:
    """A run of instructions [start, end) within one method.

    `bid` is a process-global integer assigned by the linker; the
    profiler and trace machinery key everything on block ids.
    Successor fields are wired by the linker once all blocks exist.
    """

    method: object              # RtMethod (forward ref; set by linker)
    start: int
    end: int                    # exclusive; code[end - 1] is the terminator
    kind: str
    bid: int = -1
    # Wired successors (BasicBlock or None):
    succ_target: "BasicBlock | None" = None     # cond taken / goto
    succ_fall: "BasicBlock | None" = None       # cond not-taken / fall
    switch_blocks: tuple = ()                   # switch targets
    switch_default: "BasicBlock | None" = None
    continuation: "BasicBlock | None" = None    # resume point after invoke

    @property
    def terminator(self):
        return self.method.code[self.end - 1]

    @property
    def length(self) -> int:
        """Number of instructions in the block."""
        return self.end - self.start

    def instructions(self):
        return self.method.code[self.start:self.end]

    def static_successors(self) -> list["BasicBlock"]:
        """Statically known intra-method successors (for analyses)."""
        succs = []
        if self.kind == KIND_COND:
            succs = [self.succ_target, self.succ_fall]
        elif self.kind == KIND_GOTO:
            succs = [self.succ_target]
        elif self.kind == KIND_SWITCH:
            succs = list(self.switch_blocks) + [self.switch_default]
        elif self.kind == KIND_INVOKE:
            succs = [self.continuation]
        elif self.kind == KIND_FALL:
            succs = [self.succ_fall]
        return [s for s in succs if s is not None]

    def __repr__(self) -> str:
        name = getattr(self.method, "qualified_name", "?")
        return f"<block #{self.bid} {name}[{self.start}:{self.end}]>"


def find_leaders(method: MethodDef) -> list[int]:
    """Instruction indices that start a basic block, sorted ascending."""
    code = method.code
    if not code:
        raise VerifyError(f"method {method.name} has empty code")
    leaders = {0}
    for i, instr in enumerate(code):
        for target in branch_targets(instr):
            if not 0 <= target < len(code):
                raise VerifyError(
                    f"{method.name}: branch target {target} out of range")
            leaders.add(target)
        if instr.op in BLOCK_TERMINATOR_OPS and i + 1 < len(code):
            leaders.add(i + 1)
    for entry in method.exceptions:
        if not 0 <= entry.handler < len(code):
            raise VerifyError(
                f"{method.name}: handler {entry.handler} out of range")
        leaders.add(entry.handler)
    return sorted(leaders)


def _block_kind(term: Op) -> str:
    if term in CONDITIONAL_BRANCH_OPS:
        return KIND_COND
    if term is Op.GOTO:
        return KIND_GOTO
    if term is Op.TABLESWITCH:
        return KIND_SWITCH
    if term in INVOKE_OPS:
        return KIND_INVOKE
    if term in RETURN_OPS:
        return KIND_RETURN
    if term is Op.ATHROW:
        return KIND_THROW
    return KIND_FALL


def split_blocks(method: MethodDef) -> list[BasicBlock]:
    """Partition a method body into BasicBlocks (successors unwired).

    The last instruction of a method must not fall off the end.
    """
    code = method.code
    leaders = find_leaders(method)
    boundaries = leaders + [len(code)]
    last = code[-1]
    if can_fall_through(last.op):
        raise VerifyError(
            f"method {method.name} can fall off the end of its code")
    blocks = []
    for start, end in zip(boundaries, boundaries[1:]):
        term = code[end - 1].op
        blocks.append(BasicBlock(
            method=None,  # patched by the linker
            start=start,
            end=end,
            kind=_block_kind(term),
        ))
    return blocks

"""Opcode set and instruction representation.

The instruction set is a compact JVM-like subset: a stack machine with
typed loads/stores, 32-bit integer and float arithmetic, objects with
virtual dispatch, arrays, a table switch, and exceptions.  Branch targets
are instruction indices within the owning method (the assembler resolves
labels to indices; the linker later maps indices to basic blocks).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum, auto


class Op(IntEnum):
    """All opcodes understood by the interpreters."""

    NOP = auto()

    # Constants and stack manipulation.
    ICONST = auto()        # a = int value
    FCONST = auto()        # a = float value
    SCONST = auto()        # a = str value (interned constant string)
    ACONST_NULL = auto()
    DUP = auto()
    DUP_X1 = auto()
    POP = auto()
    SWAP = auto()

    # Locals.
    ILOAD = auto()         # a = local index
    ISTORE = auto()
    FLOAD = auto()
    FSTORE = auto()
    ALOAD = auto()
    ASTORE = auto()
    IINC = auto()          # a = local index, b = signed constant delta

    # Arrays.
    NEWARRAY = auto()      # a = element type name; length popped
    IALOAD = auto()
    IASTORE = auto()
    FALOAD = auto()
    FASTORE = auto()
    AALOAD = auto()
    AASTORE = auto()
    ARRAYLENGTH = auto()

    # Integer arithmetic (Java 32-bit wrap-around semantics).
    IADD = auto()
    ISUB = auto()
    IMUL = auto()
    IDIV = auto()
    IREM = auto()
    INEG = auto()
    IAND = auto()
    IOR = auto()
    IXOR = auto()
    ISHL = auto()
    ISHR = auto()
    IUSHR = auto()

    # Float arithmetic.
    FADD = auto()
    FSUB = auto()
    FMUL = auto()
    FDIV = auto()
    FNEG = auto()
    FCMPL = auto()         # pushes -1/0/1, NaN -> -1
    FCMPG = auto()         # pushes -1/0/1, NaN -> +1

    # Conversions.
    I2F = auto()
    F2I = auto()

    # Control flow.  a = target instruction index (after assembly).
    GOTO = auto()
    IF_ICMPEQ = auto()
    IF_ICMPNE = auto()
    IF_ICMPLT = auto()
    IF_ICMPLE = auto()
    IF_ICMPGT = auto()
    IF_ICMPGE = auto()
    IFEQ = auto()
    IFNE = auto()
    IFLT = auto()
    IFLE = auto()
    IFGT = auto()
    IFGE = auto()
    IF_ACMPEQ = auto()
    IF_ACMPNE = auto()
    IFNULL = auto()
    IFNONNULL = auto()
    TABLESWITCH = auto()   # a = (low, default target), b = tuple of targets

    # Objects.
    NEW = auto()           # a = class name -> RtClass after linking
    GETFIELD = auto()      # a = field name
    PUTFIELD = auto()
    GETSTATIC = auto()     # a = (class name, field name) -> RtClass binding
    PUTSTATIC = auto()
    INSTANCEOF = auto()    # a = class name -> RtClass

    # Calls.  b = argument count (excluding receiver for virtual/special).
    INVOKESTATIC = auto()  # a = (class name, method name) -> RtMethod
    INVOKEVIRTUAL = auto() # a = method name (vtable lookup at runtime)
    INVOKESPECIAL = auto() # a = (class name, method name) -> RtMethod

    # Returns and exceptions.
    RETURN = auto()
    IRETURN = auto()
    FRETURN = auto()
    ARETURN = auto()
    ATHROW = auto()


@dataclass(slots=True)
class Instruction:
    """One bytecode instruction: an opcode plus up to two operands.

    Operand meaning depends on the opcode (see :class:`Op` comments).
    Instances start with symbolic operands (names, labels) and are
    resolved in place by the assembler (labels -> indices) and the
    linker (names -> runtime objects).
    """

    op: Op
    a: object = None
    b: object = None

    def __repr__(self) -> str:
        parts = [self.op.name]
        if self.a is not None:
            parts.append(repr(self.a))
        if self.b is not None:
            parts.append(repr(self.b))
        return f"<{' '.join(parts)}>"


# Conditional branches: fall through or jump to instruction index `a`.
CONDITIONAL_BRANCH_OPS = frozenset({
    Op.IF_ICMPEQ, Op.IF_ICMPNE, Op.IF_ICMPLT, Op.IF_ICMPLE,
    Op.IF_ICMPGT, Op.IF_ICMPGE,
    Op.IFEQ, Op.IFNE, Op.IFLT, Op.IFLE, Op.IFGT, Op.IFGE,
    Op.IF_ACMPEQ, Op.IF_ACMPNE, Op.IFNULL, Op.IFNONNULL,
})

# Two-operand int comparisons mapped to Python comparison results.
ICMP_CONDITIONS = {
    Op.IF_ICMPEQ: "==", Op.IF_ICMPNE: "!=",
    Op.IF_ICMPLT: "<", Op.IF_ICMPLE: "<=",
    Op.IF_ICMPGT: ">", Op.IF_ICMPGE: ">=",
}

INVOKE_OPS = frozenset({Op.INVOKESTATIC, Op.INVOKEVIRTUAL, Op.INVOKESPECIAL})

RETURN_OPS = frozenset({Op.RETURN, Op.IRETURN, Op.FRETURN, Op.ARETURN})

# Instructions that always end a basic block in the threaded model.
# Invokes end blocks because a direct-threaded-inlining interpreter
# dispatches across the call edge (Piumarta & Riccardi inlining stops at
# calls); this is what makes traces cross method boundaries.
BLOCK_TERMINATOR_OPS = (
    CONDITIONAL_BRANCH_OPS
    | INVOKE_OPS
    | RETURN_OPS
    | frozenset({Op.GOTO, Op.TABLESWITCH, Op.ATHROW})
)


def branch_targets(instr: Instruction) -> tuple[int, ...]:
    """Explicit jump targets of a control-flow instruction (indices)."""
    op = instr.op
    if op is Op.GOTO or op in CONDITIONAL_BRANCH_OPS:
        return (instr.a,)
    if op is Op.TABLESWITCH:
        low, default = instr.a
        return tuple(instr.b) + (default,)
    return ()


def can_fall_through(op: Op) -> bool:
    """Whether control may continue to the next instruction index."""
    if op is Op.GOTO or op is Op.TABLESWITCH or op is Op.ATHROW:
        return False
    if op in RETURN_OPS:
        return False
    return True


# Static stack effect (pops, pushes) for the verifier.  Invokes are
# handled specially because the pop count depends on the argument count.
STACK_EFFECT: dict[Op, tuple[int, int]] = {
    Op.NOP: (0, 0),
    Op.ICONST: (0, 1), Op.FCONST: (0, 1), Op.SCONST: (0, 1),
    Op.ACONST_NULL: (0, 1),
    Op.DUP: (1, 2), Op.DUP_X1: (2, 3), Op.POP: (1, 0), Op.SWAP: (2, 2),
    Op.ILOAD: (0, 1), Op.ISTORE: (1, 0),
    Op.FLOAD: (0, 1), Op.FSTORE: (1, 0),
    Op.ALOAD: (0, 1), Op.ASTORE: (1, 0),
    Op.IINC: (0, 0),
    Op.NEWARRAY: (1, 1),
    Op.IALOAD: (2, 1), Op.IASTORE: (3, 0),
    Op.FALOAD: (2, 1), Op.FASTORE: (3, 0),
    Op.AALOAD: (2, 1), Op.AASTORE: (3, 0),
    Op.ARRAYLENGTH: (1, 1),
    Op.IADD: (2, 1), Op.ISUB: (2, 1), Op.IMUL: (2, 1),
    Op.IDIV: (2, 1), Op.IREM: (2, 1), Op.INEG: (1, 1),
    Op.IAND: (2, 1), Op.IOR: (2, 1), Op.IXOR: (2, 1),
    Op.ISHL: (2, 1), Op.ISHR: (2, 1), Op.IUSHR: (2, 1),
    Op.FADD: (2, 1), Op.FSUB: (2, 1), Op.FMUL: (2, 1),
    Op.FDIV: (2, 1), Op.FNEG: (1, 1),
    Op.FCMPL: (2, 1), Op.FCMPG: (2, 1),
    Op.I2F: (1, 1), Op.F2I: (1, 1),
    Op.GOTO: (0, 0),
    Op.IF_ICMPEQ: (2, 0), Op.IF_ICMPNE: (2, 0),
    Op.IF_ICMPLT: (2, 0), Op.IF_ICMPLE: (2, 0),
    Op.IF_ICMPGT: (2, 0), Op.IF_ICMPGE: (2, 0),
    Op.IFEQ: (1, 0), Op.IFNE: (1, 0), Op.IFLT: (1, 0),
    Op.IFLE: (1, 0), Op.IFGT: (1, 0), Op.IFGE: (1, 0),
    Op.IF_ACMPEQ: (2, 0), Op.IF_ACMPNE: (2, 0),
    Op.IFNULL: (1, 0), Op.IFNONNULL: (1, 0),
    Op.TABLESWITCH: (1, 0),
    Op.NEW: (0, 1),
    Op.GETFIELD: (1, 1), Op.PUTFIELD: (2, 0),
    Op.GETSTATIC: (0, 1), Op.PUTSTATIC: (1, 0),
    Op.INSTANCEOF: (1, 1),
    Op.RETURN: (0, 0), Op.IRETURN: (1, 0),
    Op.FRETURN: (1, 0), Op.ARETURN: (1, 0),
    Op.ATHROW: (1, 0),
}

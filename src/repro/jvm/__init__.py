"""JVM-like bytecode virtual machine substrate.

The substrate mirrors the execution model the paper builds on: a stack
bytecode, a classic switch interpreter (one dispatch per instruction)
and a direct-threaded-inlining interpreter (one dispatch per basic
block) whose dispatch loop exposes the hook the profiler attaches to.
"""

from .assembler import Assembler, Label
from .basicblock import BasicBlock, find_leaders, split_blocks
from .bytecode import Instruction, Op
from .classfile import ClassDef, ExceptionEntry, FieldDef, MethodDef
from .disasm import disassemble_method, disassemble_program, program_summary
from .errors import (AssemblerError, LinkError, StepLimitExceeded,
                     UncaughtVMException, VerifyError, VMError,
                     VMRuntimeError, VMThrow)
from .frame import Frame
from .heap import ArrayRef, ObjRef
from .interpreter import SwitchInterpreter
from .intrinsics import NATIVE_CLASS, NATIVES, NativeMethod
from .jasm import JasmError, format_jasm, parse_jasm
from .linker import Program, RtClass, RtMethod, link
from .threaded import Machine, ThreadedInterpreter, execute_block
from .verifier import verify_program

__all__ = [
    "Assembler", "Label", "BasicBlock", "find_leaders", "split_blocks",
    "Instruction", "Op", "ClassDef", "ExceptionEntry", "FieldDef",
    "MethodDef", "disassemble_method", "disassemble_program",
    "program_summary", "AssemblerError", "LinkError", "StepLimitExceeded",
    "UncaughtVMException", "VerifyError", "VMError", "VMRuntimeError",
    "VMThrow", "Frame", "ArrayRef", "ObjRef", "SwitchInterpreter",
    "NATIVE_CLASS", "NATIVES", "NativeMethod", "Program", "RtClass",
    "RtMethod", "link", "Machine", "ThreadedInterpreter", "execute_block",
    "verify_program", "JasmError", "format_jasm", "parse_jasm",
]

"""Native methods exposed to bytecode as static calls on class ``Sys``.

Natives execute inline (no frame push, no dispatch event beyond the one
the invoke terminator already causes), mirroring how a threaded
interpreter calls out to C helpers.

All natives are deterministic: randomness comes from an in-VM LCG
(workloads implement their own), and ``Sys.ticks`` returns the executed
instruction count rather than wall-clock time.
"""

from __future__ import annotations

import math

from .errors import VMRuntimeError
from .values import java_f2i, wrap_int

NATIVE_CLASS = "Sys"


class NativeMethod:
    """A Python-implemented static method callable from bytecode."""

    __slots__ = ("name", "argc", "returns_value", "fn")

    def __init__(self, name: str, argc: int, returns_value: bool, fn) -> None:
        self.name = name
        self.argc = argc
        self.returns_value = returns_value
        self.fn = fn

    @property
    def qualified_name(self) -> str:
        return f"{NATIVE_CLASS}.{self.name}"

    def __repr__(self) -> str:
        return f"<native {self.qualified_name}/{self.argc}>"


def _check_number(value, who: str) -> None:
    if type(value) not in (int, float):
        raise VMRuntimeError(f"{who}: expected a number, got {value!r}")


def _build_table() -> dict[str, NativeMethod]:
    table: dict[str, NativeMethod] = {}

    def native(name: str, argc: int, returns_value: bool = True):
        def register(fn):
            table[name] = NativeMethod(name, argc, returns_value, fn)
            return fn
        return register

    @native("print", 1, returns_value=False)
    def _print(machine, args):
        machine.output.append(str(args[0]))

    @native("printf", 1, returns_value=False)
    def _printf(machine, args):
        machine.output.append(repr(float(args[0])))

    @native("prints", 1, returns_value=False)
    def _prints(machine, args):
        machine.output.append(str(args[0]))

    @native("abs", 1)
    def _abs(machine, args):
        _check_number(args[0], "Sys.abs")
        return wrap_int(abs(args[0]))

    @native("min", 2)
    def _min(machine, args):
        return min(args[0], args[1])

    @native("max", 2)
    def _max(machine, args):
        return max(args[0], args[1])

    @native("isqrt", 1)
    def _isqrt(machine, args):
        if args[0] < 0:
            raise VMRuntimeError("Sys.isqrt of negative value")
        return math.isqrt(args[0])

    @native("fsqrt", 1)
    def _fsqrt(machine, args):
        if args[0] < 0:
            return float("nan")
        return math.sqrt(args[0])

    @native("fsin", 1)
    def _fsin(machine, args):
        return math.sin(args[0])

    @native("fcos", 1)
    def _fcos(machine, args):
        return math.cos(args[0])

    @native("fexp", 1)
    def _fexp(machine, args):
        return math.exp(args[0])

    @native("flog", 1)
    def _flog(machine, args):
        if args[0] <= 0:
            raise VMRuntimeError("Sys.flog of non-positive value")
        return math.log(args[0])

    @native("fabs", 1)
    def _fabs(machine, args):
        return abs(float(args[0]))

    @native("ffloor", 1)
    def _ffloor(machine, args):
        return float(math.floor(args[0]))

    @native("f2i", 1)
    def _f2i(machine, args):
        return java_f2i(float(args[0]))

    @native("ticks", 0)
    def _ticks(machine, args):
        return wrap_int(machine.instr_count)

    return table


NATIVES: dict[str, NativeMethod] = _build_table()


def lookup_native(name: str) -> NativeMethod:
    try:
        return NATIVES[name]
    except KeyError:
        raise VMRuntimeError(f"unknown native Sys.{name}") from None

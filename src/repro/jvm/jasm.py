"""jasm — a line-oriented textual assembly for the repro bytecode.

Lets VM-level programs be written (and generated programs be saved)
without going through the mini-Java compiler::

    class Main
      static method main() -> int
        iconst 0
        istore 0
      loop:
        iload 0
        iconst 100
        if_icmpge done
        iinc 0 1
        goto loop
      done:
        iload 0
        ireturn
      end
    end

Grammar (one construct per line, ``#`` starts a comment):

- ``class NAME [extends SUPER]`` ... ``end``
- ``[static] field NAME TYPE``
- ``[static] method NAME(T1, T2) -> RET`` ... ``end``
- ``locals N``                       (optional minimum local count)
- ``LABEL:``                         (position marker)
- ``try START END HANDLER [CLASS]``  (labels; CLASS omitted = catch-all)
- ``OPCODE [operands...]``           (lower-case opcode names)

Operand forms: ints, floats (must contain ``.``/``e``), quoted strings,
labels (branch targets), ``Cls.member`` pairs (static refs), bare names
(fields, virtual methods, classes, array element types).
``tableswitch LOW [L1 L2 ...] default LD`` and
``invokevirtual NAME ARGC`` are the two multi-operand special cases.

:func:`parse_jasm` -> list[ClassDef]; :func:`format_jasm` round-trips.
"""

from __future__ import annotations

from .assembler import Assembler
from .bytecode import (CONDITIONAL_BRANCH_OPS, Op, branch_targets)
from .classfile import ClassDef, ExceptionEntry, FieldDef, MethodDef
from .errors import AssemblerError

_PRIMITIVES = ("int", "float", "boolean", "void", "String")


class JasmError(AssemblerError):
    """Syntax error in jasm input."""

    def __init__(self, message: str, line_no: int) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


# Opcodes taking a label operand.
_BRANCH_NAMES = {op.name.lower() for op in CONDITIONAL_BRANCH_OPS} \
    | {"goto"}
# Opcodes taking a Cls.member operand.
_PAIR_OPS = {"invokestatic", "invokespecial", "getstatic", "putstatic"}
# Opcodes taking a bare-name operand.
_NAME_OPS = {"new", "instanceof", "newarray", "getfield", "putfield"}


def _tokenize_line(line: str, line_no: int) -> list[str]:
    tokens: list[str] = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c in " \t":
            i += 1
            continue
        if c == "#":
            break
        if c == '"':
            j = i + 1
            out = []
            while j < n and line[j] != '"':
                if line[j] == "\\" and j + 1 < n:
                    esc = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                    out.append(esc.get(line[j + 1], line[j + 1]))
                    j += 2
                else:
                    out.append(line[j])
                    j += 1
            if j >= n:
                raise JasmError("unterminated string", line_no)
            tokens.append('"' + "".join(out))
            i = j + 1
            continue
        if c in "[]":
            # Standalone bracket (tableswitch list delimiters); array
            # type suffixes like `int[]` stay glued to their word.
            tokens.append(c)
            i += 1
            continue
        j = i
        while j < n and line[j] not in " \t#":
            j += 1
        tokens.append(line[i:j])
        i = j
    return tokens


def parse_jasm(text: str) -> list[ClassDef]:
    """Parse jasm text into symbolic ClassDefs."""
    classes: list[ClassDef] = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        tokens = _tokenize_line(lines[i], i + 1)
        if not tokens:
            i += 1
            continue
        if tokens[0] != "class":
            raise JasmError(f"expected 'class', got {tokens[0]!r}", i + 1)
        cls, i = _parse_class(lines, i)
        classes.append(cls)
    return classes


def _parse_class(lines: list[str], index: int) -> tuple[ClassDef, int]:
    tokens = _tokenize_line(lines[index], index + 1)
    if len(tokens) == 2:
        name, super_name = tokens[1], "Object"
    elif len(tokens) == 4 and tokens[2] == "extends":
        name, super_name = tokens[1], tokens[3]
    else:
        raise JasmError("malformed class header", index + 1)
    cls = ClassDef(name=name, super_name=super_name)
    i = index + 1
    while i < len(lines):
        tokens = _tokenize_line(lines[i], i + 1)
        if not tokens:
            i += 1
            continue
        head = tokens[0]
        is_static = head == "static"
        if is_static:
            tokens = tokens[1:]
            head = tokens[0] if tokens else ""
        if head == "end":
            return cls, i + 1
        if head == "field":
            if len(tokens) != 3:
                raise JasmError("field NAME TYPE", i + 1)
            cls.fields.append(FieldDef(tokens[1], tokens[2], is_static))
            i += 1
        elif head == "method":
            method, i = _parse_method(lines, i, tokens, is_static)
            cls.methods.append(method)
        else:
            raise JasmError(
                f"expected field/method/end, got {head!r}", i + 1)
    raise JasmError(f"class {name} not terminated with 'end'",
                    len(lines))


def _parse_signature(tokens: list[str], line_no: int):
    # method NAME(T1, T2) -> RET   — tokens split on whitespace, so the
    # name and parameter list may be glued: rebuild from raw text.
    text = " ".join(tokens[1:])
    if "->" not in text:
        raise JasmError("method signature needs '-> RET'", line_no)
    sig, _, ret = text.partition("->")
    ret = ret.strip()
    sig = sig.strip()
    if "(" not in sig or not sig.endswith(")"):
        raise JasmError("method signature needs '(params)'", line_no)
    name, _, params = sig.partition("(")
    params = params[:-1].strip()
    param_types = [p.strip() for p in params.split(",") if p.strip()]
    return name.strip(), param_types, ret


def _parse_method(lines: list[str], index: int, header: list[str],
                  is_static: bool) -> tuple[MethodDef, int]:
    name, param_types, return_type = _parse_signature(header, index + 1)
    asm = Assembler()
    labels: dict[str, object] = {}
    pending_tries: list[tuple] = []
    max_locals = 0

    def label(label_name: str):
        if label_name not in labels:
            labels[label_name] = asm.new_label(label_name)
        return labels[label_name]

    i = index + 1
    while i < len(lines):
        line_no = i + 1
        tokens = _tokenize_line(lines[i], line_no)
        i += 1
        if not tokens:
            continue
        head = tokens[0]
        if head == "end":
            _check_labels(labels, line_no)
            code = asm.finish()
            exceptions = asm.exception_table()
            for start, end, handler, cls_name in pending_tries:
                exceptions.append(ExceptionEntry(
                    labels[start].index, labels[end].index,
                    labels[handler].index, cls_name))
            return MethodDef(
                name=name, param_types=param_types,
                return_type=return_type, is_static=is_static,
                max_locals=max_locals, code=code,
                exceptions=exceptions), i
        if head.endswith(":"):
            asm.bind(label(head[:-1]))
            continue
        if head == "locals":
            max_locals = int(tokens[1])
            continue
        if head == "try":
            if len(tokens) not in (4, 5):
                raise JasmError("try START END HANDLER [CLASS]", line_no)
            cls_name = tokens[4] if len(tokens) == 5 else None
            for lbl in tokens[1:4]:
                label(lbl)
            pending_tries.append(
                (tokens[1], tokens[2], tokens[3], cls_name))
            continue
        _emit(asm, label, tokens, line_no)
    raise JasmError(f"method {name} not terminated with 'end'",
                    len(lines))


def _check_labels(labels: dict, line_no: int) -> None:
    for name, lbl in labels.items():
        if lbl.index is None:
            raise JasmError(f"label {name!r} referenced but never bound",
                            line_no)


def _parse_value(token: str, line_no: int):
    if token.startswith('"'):
        return token[1:]
    try:
        if any(c in token for c in ".eE") and not token.startswith("0x"):
            return float(token)
        return int(token, 0)
    except ValueError:
        raise JasmError(f"bad numeric operand {token!r}",
                        line_no) from None


def _emit(asm: Assembler, label, tokens: list[str], line_no: int) -> None:
    mnemonic = tokens[0].lower()
    operands = tokens[1:]
    try:
        op = Op[mnemonic.upper()]
    except KeyError:
        raise JasmError(f"unknown opcode {mnemonic!r}", line_no) from None

    if mnemonic in _BRANCH_NAMES:
        if len(operands) != 1:
            raise JasmError(f"{mnemonic} takes one label", line_no)
        asm.branch(op, label(operands[0]))
        return
    if mnemonic == "tableswitch":
        # tableswitch LOW [ L1 L2 ... ] default LD
        if len(operands) < 5 or operands[1] != "[":
            raise JasmError(
                "tableswitch LOW [ labels... ] default LABEL", line_no)
        low = int(operands[0])
        close = operands.index("]")
        case_labels = [label(t) for t in operands[2:close]]
        if operands[close + 1] != "default":
            raise JasmError("tableswitch needs 'default LABEL'", line_no)
        asm.tableswitch(low, case_labels, label(operands[close + 2]))
        return
    if mnemonic in _PAIR_OPS:
        if len(operands) != 1 or "." not in operands[0]:
            raise JasmError(f"{mnemonic} takes Cls.member", line_no)
        cls_name, _, member = operands[0].partition(".")
        asm.emit(op, (cls_name, member))
        return
    if mnemonic == "invokevirtual":
        if len(operands) != 2:
            raise JasmError("invokevirtual NAME ARGC", line_no)
        asm.emit(op, operands[0], int(operands[1]))
        return
    if mnemonic in _NAME_OPS:
        if len(operands) != 1:
            raise JasmError(f"{mnemonic} takes one name", line_no)
        asm.emit(op, operands[0])
        return
    if mnemonic == "iinc":
        if len(operands) != 2:
            raise JasmError("iinc SLOT DELTA", line_no)
        asm.emit(op, int(operands[0]), int(operands[1]))
        return
    # Generic: zero or one literal operand.
    if not operands:
        asm.emit(op)
        return
    if len(operands) == 1:
        asm.emit(op, _parse_value(operands[0], line_no))
        return
    raise JasmError(f"too many operands for {mnemonic}", line_no)


# ---------------------------------------------------------------------------
# Formatting (ClassDefs -> jasm text).

def _format_operand(value) -> str:
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"') \
            .replace("\n", "\\n").replace("\t", "\\t")
        return f'"{escaped}"'
    if isinstance(value, float):
        text = repr(value)
        return text if any(c in text for c in ".eE") else text + ".0"
    return str(value)


def format_jasm(classes: list[ClassDef]) -> str:
    """Serialize symbolic ClassDefs to jasm text (parse round-trips)."""
    out: list[str] = []
    for cls in classes:
        extends = (f" extends {cls.super_name}"
                   if cls.super_name not in (None, "Object") else "")
        out.append(f"class {cls.name}{extends}")
        for fdef in cls.fields:
            static = "static " if fdef.is_static else ""
            out.append(f"  {static}field {fdef.name} {fdef.type_name}")
        for method in cls.methods:
            out.append(_format_method(method))
        out.append("end")
        out.append("")
    return "\n".join(out)


def _format_method(method: MethodDef) -> str:
    static = "static " if method.is_static else ""
    params = ", ".join(method.param_types)
    lines = [f"  {static}method {method.name}({params}) "
             f"-> {method.return_type}"]
    if method.max_locals:
        lines.append(f"    locals {method.max_locals}")

    # Collect label positions: branch targets + exception boundaries.
    targets = set()
    for instr in method.code:
        targets.update(branch_targets(instr))
    for entry in method.exceptions:
        targets.update((entry.start, entry.end, entry.handler))
    label_at = {pos: f"L{pos}" for pos in sorted(targets)}

    for entry in method.exceptions:
        catch = f" {entry.class_name}" if entry.class_name else ""
        lines.append(f"    try L{entry.start} L{entry.end} "
                     f"L{entry.handler}{catch}")

    for index, instr in enumerate(method.code):
        if index in label_at:
            lines.append(f"  {label_at[index]}:")
        lines.append("    " + _format_instr(instr, label_at))
    end = len(method.code)
    if end in label_at:
        lines.append(f"  {label_at[end]}:")
    lines.append("  end")
    return "\n".join(lines)


def _format_instr(instr, label_at: dict) -> str:
    mnemonic = instr.op.name.lower()
    if mnemonic in _BRANCH_NAMES:
        return f"{mnemonic} {label_at[instr.a]}"
    if instr.op is Op.TABLESWITCH:
        low, default = instr.a
        cases = " ".join(label_at[t] for t in instr.b)
        return (f"tableswitch {low} [ {cases} ] default "
                f"{label_at[default]}")
    if mnemonic in _PAIR_OPS:
        cls_name, member = instr.a
        return f"{mnemonic} {cls_name}.{member}"
    if mnemonic in _NAME_OPS:
        return f"{mnemonic} {instr.a}"
    if mnemonic == "invokevirtual":
        return f"invokevirtual {instr.a} {instr.b}"
    if mnemonic == "iinc":
        return f"iinc {instr.a} {instr.b}"
    parts = [mnemonic]
    if instr.a is not None:
        parts.append(_format_operand(instr.a))
    return " ".join(parts)

"""Human-readable disassembly of methods and programs."""

from __future__ import annotations

from .bytecode import Instruction, Op, branch_targets
from .intrinsics import NativeMethod
from .linker import Program, RtMethod


def _operand_str(instr: Instruction) -> str:
    op = instr.op
    if op is Op.TABLESWITCH:
        low, default = instr.a
        targets = ", ".join(str(t) for t in instr.b)
        return f"low={low} [{targets}] default={default}"
    parts = []
    for operand in (instr.a, instr.b):
        if operand is None:
            continue
        if isinstance(operand, NativeMethod):
            parts.append(operand.qualified_name)
        elif isinstance(operand, RtMethod):
            parts.append(operand.qualified_name)
        elif isinstance(operand, tuple):
            parts.append(".".join(getattr(x, "name", str(x))
                                  for x in operand))
        elif hasattr(operand, "name") and not isinstance(operand, str):
            parts.append(operand.name)
        else:
            parts.append(repr(operand))
    return " ".join(parts)


def disassemble_method(method: RtMethod) -> str:
    """One line per instruction, with block boundaries and jump targets."""
    targets = set()
    for instr in method.code:
        targets.update(branch_targets(instr))
    block_starts = set(method.block_at)
    lines = [f"method {method.qualified_name}"
             f"({', '.join(method.param_types)}) -> {method.return_type}"
             f"  [max_locals={method.max_locals}]"]
    for index, instr in enumerate(method.code):
        marks = ""
        if index in block_starts:
            block = method.block_at[index]
            marks = f"  ; block #{block.bid} ({block.kind})"
        arrow = "->" if index in targets else "  "
        lines.append(
            f"  {arrow} {index:4d}: {instr.op.name:<14s}"
            f"{_operand_str(instr)}{marks}")
    for entry in method.exceptions:
        catch = entry.class_name or "<any>"
        lines.append(f"  try [{entry.start}, {entry.end}) "
                     f"catch {catch} -> {entry.handler}")
    return "\n".join(lines)


def disassemble_program(program: Program) -> str:
    """Disassembly of every method, grouped by class."""
    sections = []
    for cls_name in sorted(program.classes):
        cls = program.classes[cls_name]
        if not cls.methods:
            continue
        sections.append(f"class {cls.name}"
                        + (f" extends {cls.superclass.name}"
                           if cls.superclass else ""))
        for mname in sorted(cls.methods):
            sections.append(disassemble_method(cls.methods[mname]))
    return "\n\n".join(sections)


def program_summary(program: Program) -> str:
    """One-paragraph structural summary (classes/methods/blocks)."""
    n_methods = len(program.methods)
    n_blocks = program.block_count
    n_instrs = sum(len(m.code) for m in program.methods)
    return (f"{len(program.classes)} classes, {n_methods} methods, "
            f"{n_blocks} basic blocks, {n_instrs} instructions; "
            f"entry {program.entry.qualified_name if program.entry else '?'}")

"""Error hierarchy for the VM, linker, verifier and assembler."""

from __future__ import annotations


class VMError(Exception):
    """Base class for all errors raised by the repro JVM substrate."""


class LinkError(VMError):
    """A symbolic reference could not be resolved at link time."""


class VerifyError(VMError):
    """Bytecode failed static verification."""


class AssemblerError(VMError):
    """Malformed input to the method assembler (e.g. undefined label)."""


class VMRuntimeError(VMError):
    """An unrecoverable condition hit while executing bytecode."""


class StackUnderflowError(VMRuntimeError):
    """Operand stack popped while empty (only without verification)."""


class StepLimitExceeded(VMRuntimeError):
    """The interpreter exceeded its configured instruction budget."""


class VMThrow(Exception):
    """Internal unwinding carrier for an in-VM `athrow`.

    Not a VMError: it is caught by the dispatch loop and routed to an
    exception handler block, or converted to UncaughtVMException at the
    top of the frame stack.
    """

    def __init__(self, value):
        super().__init__(value)
        self.value = value


class UncaughtVMException(VMRuntimeError):
    """An in-VM exception propagated out of `main` without a handler."""

    def __init__(self, value):
        super().__init__(f"uncaught VM exception: {value!r}")
        self.value = value

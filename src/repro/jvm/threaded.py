"""The direct-threaded-inlining execution model (Figure 2 of the paper).

:func:`execute_block` runs one basic block straight-line and returns the
dynamically chosen successor block (or None when the program finishes).
:class:`Machine` holds all mutable execution state.
:class:`ThreadedInterpreter` is the plain block-at-a-time dispatch loop:
one dispatch per basic block, with an optional per-dispatch hook — the
attachment point for the paper's profiler.
"""

from __future__ import annotations

from .basicblock import BasicBlock
from .bytecode import Op
from .errors import (StepLimitExceeded, UncaughtVMException,
                     VMRuntimeError)
from .frame import Frame
from .heap import ArrayRef, ObjRef
from .intrinsics import NativeMethod
from .linker import Program, RtMethod
from .values import (fcmp, java_f2i, java_fdiv, java_idiv, java_irem,
                     java_ishl, java_ishr, java_iushr, wrap_int)

# Cached opcode members: `is` comparisons against these are the hot path.
_NOP = Op.NOP
_ICONST = Op.ICONST
_FCONST = Op.FCONST
_SCONST = Op.SCONST
_ACONST_NULL = Op.ACONST_NULL
_DUP = Op.DUP
_DUP_X1 = Op.DUP_X1
_POP = Op.POP
_SWAP = Op.SWAP
_ILOAD = Op.ILOAD
_ISTORE = Op.ISTORE
_FLOAD = Op.FLOAD
_FSTORE = Op.FSTORE
_ALOAD = Op.ALOAD
_ASTORE = Op.ASTORE
_IINC = Op.IINC
_NEWARRAY = Op.NEWARRAY
_IALOAD = Op.IALOAD
_IASTORE = Op.IASTORE
_FALOAD = Op.FALOAD
_FASTORE = Op.FASTORE
_AALOAD = Op.AALOAD
_AASTORE = Op.AASTORE
_ARRAYLENGTH = Op.ARRAYLENGTH
_IADD = Op.IADD
_ISUB = Op.ISUB
_IMUL = Op.IMUL
_IDIV = Op.IDIV
_IREM = Op.IREM
_INEG = Op.INEG
_IAND = Op.IAND
_IOR = Op.IOR
_IXOR = Op.IXOR
_ISHL = Op.ISHL
_ISHR = Op.ISHR
_IUSHR = Op.IUSHR
_FADD = Op.FADD
_FSUB = Op.FSUB
_FMUL = Op.FMUL
_FDIV = Op.FDIV
_FNEG = Op.FNEG
_FCMPL = Op.FCMPL
_FCMPG = Op.FCMPG
_I2F = Op.I2F
_F2I = Op.F2I
_GOTO = Op.GOTO
_IF_ICMPEQ = Op.IF_ICMPEQ
_IF_ICMPNE = Op.IF_ICMPNE
_IF_ICMPLT = Op.IF_ICMPLT
_IF_ICMPLE = Op.IF_ICMPLE
_IF_ICMPGT = Op.IF_ICMPGT
_IF_ICMPGE = Op.IF_ICMPGE
_IFEQ = Op.IFEQ
_IFNE = Op.IFNE
_IFLT = Op.IFLT
_IFLE = Op.IFLE
_IFGT = Op.IFGT
_IFGE = Op.IFGE
_IF_ACMPEQ = Op.IF_ACMPEQ
_IF_ACMPNE = Op.IF_ACMPNE
_IFNULL = Op.IFNULL
_IFNONNULL = Op.IFNONNULL
_TABLESWITCH = Op.TABLESWITCH
_NEW = Op.NEW
_GETFIELD = Op.GETFIELD
_PUTFIELD = Op.PUTFIELD
_GETSTATIC = Op.GETSTATIC
_PUTSTATIC = Op.PUTSTATIC
_INSTANCEOF = Op.INSTANCEOF
_INVOKESTATIC = Op.INVOKESTATIC
_INVOKEVIRTUAL = Op.INVOKEVIRTUAL
_INVOKESPECIAL = Op.INVOKESPECIAL
_RETURN = Op.RETURN
_IRETURN = Op.IRETURN
_FRETURN = Op.FRETURN
_ARETURN = Op.ARETURN
_ATHROW = Op.ATHROW

_NO_VALUE = object()

DEFAULT_MAX_INSTRUCTIONS = 200_000_000


class Machine:
    """All mutable state of one program execution."""

    __slots__ = ("program", "frames", "output", "instr_count",
                 "max_instructions", "result", "classes")

    def __init__(self, program: Program,
                 max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> None:
        self.program = program
        self.frames: list[Frame] = []
        self.output: list[str] = []
        self.instr_count = 0
        self.max_instructions = max_instructions
        self.result = None
        self.classes = program.classes

    def start(self, method: RtMethod | None = None,
              args: list | None = None) -> BasicBlock:
        """Push the entry frame; returns the first block to dispatch."""
        method = method or self.program.entry
        if method is None:
            raise VMRuntimeError("program has no entry method")
        self.frames.append(Frame(method, list(args or []), None))
        return method.entry_block

    @property
    def current_frame(self) -> Frame:
        return self.frames[-1]


def _unwind(machine: Machine, throw_index: int, exc: ObjRef) -> BasicBlock:
    """Pop frames until a handler catches `exc`; returns the handler block."""
    frames = machine.frames
    classes = machine.classes
    while frames:
        frame = frames[-1]
        handler = frame.method.find_handler(throw_index, exc.rtclass, classes)
        if handler is not None:
            frame.stack.clear()
            frame.stack.append(exc)
            return handler
        popped = frames.pop()
        if frames:
            throw_index = popped.return_block.start - 1
    raise UncaughtVMException(exc)


def _throw(machine: Machine, value, throw_index: int) -> BasicBlock:
    throwable = machine.classes["Throwable"]
    if not isinstance(value, ObjRef) or not value.rtclass.is_subclass_of(
            throwable):
        raise VMRuntimeError(f"athrow of non-Throwable value {value!r}")
    return _unwind(machine, throw_index, value)


def execute_block(machine: Machine, block: BasicBlock) -> BasicBlock | None:
    """Execute `block` straight-line; return the successor block.

    Returns None exactly when the entry frame returned (program end).
    Raises StepLimitExceeded when the instruction budget is exhausted,
    and VMRuntimeError subclasses for fatal conditions.
    """
    machine.instr_count += block.end - block.start
    if machine.instr_count > machine.max_instructions:
        raise StepLimitExceeded(
            f"exceeded {machine.max_instructions} instructions")

    frame = machine.frames[-1]
    stack = frame.stack
    locals_ = frame.locals
    code = block.method.code
    push = stack.append
    pop = stack.pop

    for index in range(block.start, block.end):
        instr = code[index]
        op = instr.op

        if op is _ILOAD or op is _FLOAD or op is _ALOAD:
            push(locals_[instr.a])
        elif op is _ICONST or op is _FCONST or op is _SCONST:
            push(instr.a)
        elif op is _ISTORE or op is _FSTORE or op is _ASTORE:
            locals_[instr.a] = pop()
        elif op is _IINC:
            locals_[instr.a] = wrap_int(locals_[instr.a] + instr.b)
        elif op is _IADD:
            b = pop()
            stack[-1] = wrap_int(stack[-1] + b)
        elif op is _ISUB:
            b = pop()
            stack[-1] = wrap_int(stack[-1] - b)
        elif op is _IMUL:
            b = pop()
            stack[-1] = wrap_int(stack[-1] * b)
        elif op is _IDIV:
            b = pop()
            stack[-1] = java_idiv(stack[-1], b)
        elif op is _IREM:
            b = pop()
            stack[-1] = java_irem(stack[-1], b)
        elif op is _INEG:
            stack[-1] = wrap_int(-stack[-1])
        elif op is _IAND:
            b = pop()
            stack[-1] = stack[-1] & b
        elif op is _IOR:
            b = pop()
            stack[-1] = stack[-1] | b
        elif op is _IXOR:
            b = pop()
            stack[-1] = stack[-1] ^ b
        elif op is _ISHL:
            b = pop()
            stack[-1] = java_ishl(stack[-1], b)
        elif op is _ISHR:
            b = pop()
            stack[-1] = java_ishr(stack[-1], b)
        elif op is _IUSHR:
            b = pop()
            stack[-1] = java_iushr(stack[-1], b)
        elif op is _IALOAD or op is _FALOAD or op is _AALOAD:
            i = pop()
            arr = pop()
            if arr is None:
                raise VMRuntimeError("array load through null")
            push(arr.data[arr.check_index(i)])
        elif op is _IASTORE or op is _FASTORE or op is _AASTORE:
            value = pop()
            i = pop()
            arr = pop()
            if arr is None:
                raise VMRuntimeError("array store through null")
            arr.data[arr.check_index(i)] = value
        elif op is _GETFIELD:
            obj = pop()
            if obj is None:
                raise VMRuntimeError(f"getfield {instr.a!r} on null")
            push(obj.fields[instr.a])
        elif op is _PUTFIELD:
            value = pop()
            obj = pop()
            if obj is None:
                raise VMRuntimeError(f"putfield {instr.a!r} on null")
            if instr.a not in obj.fields:
                raise VMRuntimeError(
                    f"no field {instr.a!r} on {obj.rtclass.name}")
            obj.fields[instr.a] = value
        elif op is _GETSTATIC:
            owner, field = instr.a
            push(owner.statics[field])
        elif op is _PUTSTATIC:
            owner, field = instr.a
            owner.statics[field] = pop()
        elif op is _FADD:
            b = pop()
            stack[-1] = stack[-1] + b
        elif op is _FSUB:
            b = pop()
            stack[-1] = stack[-1] - b
        elif op is _FMUL:
            b = pop()
            stack[-1] = stack[-1] * b
        elif op is _FDIV:
            b = pop()
            stack[-1] = java_fdiv(stack[-1], b)
        elif op is _FNEG:
            stack[-1] = -stack[-1]
        elif op is _FCMPL:
            b = pop()
            stack[-1] = fcmp(stack[-1], b, -1)
        elif op is _FCMPG:
            b = pop()
            stack[-1] = fcmp(stack[-1], b, 1)
        elif op is _I2F:
            stack[-1] = float(stack[-1])
        elif op is _F2I:
            stack[-1] = java_f2i(stack[-1])
        elif op is _DUP:
            push(stack[-1])
        elif op is _DUP_X1:
            stack.insert(-2, stack[-1])
        elif op is _POP:
            pop()
        elif op is _SWAP:
            stack[-1], stack[-2] = stack[-2], stack[-1]
        elif op is _ACONST_NULL:
            push(None)
        elif op is _NEW:
            push(ObjRef(instr.a))
        elif op is _NEWARRAY:
            push(ArrayRef(instr.a, pop()))
        elif op is _ARRAYLENGTH:
            arr = pop()
            if arr is None:
                raise VMRuntimeError("arraylength of null")
            push(len(arr.data))
        elif op is _INSTANCEOF:
            obj = pop()
            push(
                1 if isinstance(obj, ObjRef)
                and obj.rtclass.is_subclass_of(instr.a) else 0)
        elif op is _NOP:
            pass

        # --- terminators -------------------------------------------------
        elif op is _GOTO:
            return block.succ_target
        elif op is _IF_ICMPLT:
            b = pop()
            return block.succ_target if pop() < b else block.succ_fall
        elif op is _IF_ICMPGE:
            b = pop()
            return block.succ_target if pop() >= b else block.succ_fall
        elif op is _IF_ICMPEQ:
            b = pop()
            return block.succ_target if pop() == b else block.succ_fall
        elif op is _IF_ICMPNE:
            b = pop()
            return block.succ_target if pop() != b else block.succ_fall
        elif op is _IF_ICMPLE:
            b = pop()
            return block.succ_target if pop() <= b else block.succ_fall
        elif op is _IF_ICMPGT:
            b = pop()
            return block.succ_target if pop() > b else block.succ_fall
        elif op is _IFEQ:
            return block.succ_target if pop() == 0 else block.succ_fall
        elif op is _IFNE:
            return block.succ_target if pop() != 0 else block.succ_fall
        elif op is _IFLT:
            return block.succ_target if pop() < 0 else block.succ_fall
        elif op is _IFLE:
            return block.succ_target if pop() <= 0 else block.succ_fall
        elif op is _IFGT:
            return block.succ_target if pop() > 0 else block.succ_fall
        elif op is _IFGE:
            return block.succ_target if pop() >= 0 else block.succ_fall
        elif op is _IF_ACMPEQ:
            b = pop()
            return block.succ_target if pop() is b else block.succ_fall
        elif op is _IF_ACMPNE:
            b = pop()
            return (block.succ_target if pop() is not b
                    else block.succ_fall)
        elif op is _IFNULL:
            return (block.succ_target if pop() is None
                    else block.succ_fall)
        elif op is _IFNONNULL:
            return (block.succ_target if pop() is not None
                    else block.succ_fall)
        elif op is _TABLESWITCH:
            value = pop()
            low = instr.a[0]
            offset = value - low
            if 0 <= offset < len(block.switch_blocks):
                return block.switch_blocks[offset]
            return block.switch_default
        elif op is _INVOKESTATIC:
            target = instr.a
            argc = instr.b
            if type(target) is NativeMethod:
                if argc:
                    args = stack[-argc:]
                    del stack[-argc:]
                else:
                    args = []
                result = target.fn(machine, args)
                if target.returns_value:
                    push(result)
                return block.continuation
            if argc:
                args = stack[-argc:]
                del stack[-argc:]
            else:
                args = []
            machine.frames.append(Frame(target, args, block.continuation))
            return target.entry_block
        elif op is _INVOKEVIRTUAL:
            argc = instr.b
            if argc:
                args = stack[-argc:]
                del stack[-argc:]
            else:
                args = []
            receiver = pop()
            if receiver is None:
                raise VMRuntimeError(
                    f"invokevirtual {instr.a!r} on null receiver")
            target = receiver.rtclass.vtable.get(instr.a)
            if target is None:
                raise VMRuntimeError(
                    f"no virtual method {instr.a!r} on "
                    f"{receiver.rtclass.name}")
            machine.frames.append(
                Frame(target, [receiver] + args, block.continuation))
            return target.entry_block
        elif op is _INVOKESPECIAL:
            target = instr.a
            argc = instr.b
            if argc:
                args = stack[-argc:]
                del stack[-argc:]
            else:
                args = []
            receiver = pop()
            if receiver is None:
                raise VMRuntimeError(
                    f"invokespecial {target.qualified_name} on null")
            machine.frames.append(
                Frame(target, [receiver] + args, block.continuation))
            return target.entry_block
        elif op is _RETURN or op is _IRETURN or op is _FRETURN \
                or op is _ARETURN:
            value = _NO_VALUE if op is _RETURN else pop()
            popped = machine.frames.pop()
            if not machine.frames:
                machine.result = None if value is _NO_VALUE else value
                return None
            if value is not _NO_VALUE:
                machine.frames[-1].stack.append(value)
            return popped.return_block
        elif op is _ATHROW:
            return _throw(machine, pop(), index)
        else:
            raise VMRuntimeError(f"unimplemented opcode {op.name}")

    # A KIND_FALL block: split only because the next instruction is a
    # leader; control continues to the next block.
    return block.succ_fall


class ThreadedInterpreter:
    """Block-at-a-time dispatch loop (the paper's Figure 2 model).

    `dispatch_hook(prev_block, next_block)`, when provided, runs once
    per dispatch — exactly where SableVM's augmented dispatch code sits.
    """

    def __init__(self, program: Program,
                 max_instructions: int = DEFAULT_MAX_INSTRUCTIONS) -> None:
        self.program = program
        self.max_instructions = max_instructions
        self.dispatch_count = 0
        self.machine: Machine | None = None

    def run(self, dispatch_hook=None) -> Machine:
        """Execute the program's entry method to completion."""
        self.program.reset_statics()
        machine = Machine(self.program, self.max_instructions)
        self.machine = machine
        current = machine.start()
        previous = None
        dispatches = 0
        if dispatch_hook is None:
            while current is not None:
                dispatches += 1
                current = execute_block(machine, current)
        else:
            while current is not None:
                dispatches += 1
                dispatch_hook(previous, current)
                previous = current
                current = execute_block(machine, current)
        self.dispatch_count = dispatches
        return machine

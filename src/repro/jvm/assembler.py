"""A small label-based bytecode assembler.

Code generators and tests build method bodies through :class:`Assembler`
using symbolic labels; :meth:`Assembler.finish` resolves labels to
instruction indices and returns the instruction list.

Example::

    asm = Assembler()
    loop = asm.new_label("loop")
    asm.emit(Op.ICONST, 0)
    asm.emit(Op.ISTORE, 0)
    asm.bind(loop)
    ...
    asm.branch(Op.IF_ICMPLT, loop)
    asm.emit(Op.RETURN)
    code = asm.finish()
"""

from __future__ import annotations

from dataclasses import dataclass

from .bytecode import (CONDITIONAL_BRANCH_OPS, Instruction, Op)
from .classfile import ExceptionEntry
from .errors import AssemblerError


@dataclass(eq=False, slots=True)
class Label:
    """A symbolic position in the instruction stream."""

    name: str
    index: int | None = None

    def __repr__(self) -> str:
        where = self.index if self.index is not None else "?"
        return f"<Label {self.name}@{where}>"


@dataclass(slots=True)
class _PendingRegion:
    start: int
    label_handler: Label
    class_name: str | None
    end: int | None = None


class Assembler:
    """Accumulates instructions and resolves labels on :meth:`finish`."""

    def __init__(self) -> None:
        self._code: list[Instruction] = []
        self._labels: list[Label] = []
        self._regions: list[_PendingRegion] = []
        self._label_counter = 0

    # ------------------------------------------------------------------
    # Emission.
    def emit(self, op: Op, a: object = None, b: object = None) -> Instruction:
        """Append a non-branch instruction."""
        instr = Instruction(op, a, b)
        self._code.append(instr)
        return instr

    def branch(self, op: Op, target: Label) -> Instruction:
        """Append a GOTO or conditional branch to `target`."""
        if op is not Op.GOTO and op not in CONDITIONAL_BRANCH_OPS:
            raise AssemblerError(f"{op.name} is not a branch opcode")
        instr = Instruction(op, target)
        self._code.append(instr)
        return instr

    def tableswitch(self, low: int, targets: list[Label],
                    default: Label) -> Instruction:
        """Append a TABLESWITCH over keys low..low+len(targets)-1."""
        instr = Instruction(Op.TABLESWITCH, (low, default), tuple(targets))
        self._code.append(instr)
        return instr

    # ------------------------------------------------------------------
    # Labels.
    def new_label(self, name: str | None = None) -> Label:
        self._label_counter += 1
        label = Label(name or f"L{self._label_counter}")
        self._labels.append(label)
        return label

    def bind(self, label: Label) -> Label:
        """Attach `label` to the next emitted instruction."""
        if label.index is not None:
            raise AssemblerError(f"label {label.name} bound twice")
        label.index = len(self._code)
        return label

    @property
    def here(self) -> int:
        """Index of the next instruction to be emitted."""
        return len(self._code)

    @property
    def has_end_label(self) -> bool:
        """True when some bound label points past the last instruction
        (the emitter must append an epilogue for it to land on)."""
        return any(label.index == len(self._code)
                   for label in self._labels if label.index is not None)

    # ------------------------------------------------------------------
    # Exception regions.
    def begin_try(self, handler: Label,
                  class_name: str | None = None) -> _PendingRegion:
        region = _PendingRegion(self.here, handler, class_name)
        self._regions.append(region)
        return region

    def end_try(self, region: _PendingRegion) -> None:
        if region.end is not None:
            raise AssemblerError("try region ended twice")
        region.end = self.here

    # ------------------------------------------------------------------
    # Resolution.
    def finish(self) -> list[Instruction]:
        """Resolve labels in place and return the instruction list."""
        code = self._code
        for instr in code:
            if isinstance(instr.a, Label):
                instr.a = self._resolve(instr.a)
            elif instr.op is Op.TABLESWITCH:
                low, default = instr.a
                instr.a = (low, self._resolve(default))
                instr.b = tuple(self._resolve(t) for t in instr.b)
        for label in self._labels:
            if label.index is not None and label.index > len(code):
                raise AssemblerError(f"label {label.name} out of range")
        return code

    def exception_table(self) -> list[ExceptionEntry]:
        """Resolved exception entries (call after :meth:`finish`)."""
        entries = []
        for region in self._regions:
            if region.end is None:
                raise AssemblerError("unterminated try region")
            entries.append(ExceptionEntry(
                start=region.start,
                end=region.end,
                handler=self._resolve(region.label_handler),
                class_name=region.class_name,
            ))
        return entries

    def _resolve(self, label: Label) -> int:
        if label.index is None:
            raise AssemblerError(f"undefined label {label.name}")
        return label.index

"""The linker: symbolic ClassDefs -> an executable runtime Program.

Linking performs, in order:

1. class hierarchy resolution (builtins ``Object``/``Throwable``/
   ``Exception`` are always present),
2. runtime method creation — instructions are *copied* so a ClassDef can
   be linked many times,
3. basic-block splitting and process-global block-id assignment,
4. intra-method successor wiring,
5. operand resolution (class names -> RtClass, static call targets ->
   RtMethod / NativeMethod).

The resulting :class:`Program` is immutable during execution except for
static fields, which :meth:`Program.reset_statics` restores.
"""

from __future__ import annotations

from .basicblock import (
    BasicBlock, KIND_COND, KIND_FALL, KIND_GOTO, KIND_INVOKE, KIND_SWITCH,
    split_blocks,
)
from .bytecode import Instruction, Op
from .classfile import ClassDef, ExceptionEntry, FieldDef, MethodDef
from .errors import LinkError
from .intrinsics import NATIVE_CLASS, lookup_native
from .values import default_value

_LOCAL_OPS = frozenset({
    Op.ILOAD, Op.ISTORE, Op.FLOAD, Op.FSTORE, Op.ALOAD, Op.ASTORE, Op.IINC,
})


def builtin_classes() -> list[ClassDef]:
    """Classes every program links against."""
    obj = ClassDef(name="Object", super_name=None)
    throwable = ClassDef(
        name="Throwable",
        super_name="Object",
        fields=[FieldDef("code", "int")],
    )
    exception = ClassDef(name="Exception", super_name="Throwable")
    return [obj, throwable, exception]


class RtClass:
    """A linked class: hierarchy, vtable, field layout, static storage."""

    __slots__ = ("name", "superclass", "methods", "vtable",
                 "instance_fields", "field_defaults", "static_fields",
                 "statics", "_mro_names")

    def __init__(self, name: str, superclass: "RtClass | None") -> None:
        self.name = name
        self.superclass = superclass
        self.methods: dict[str, RtMethod] = {}
        # vtable: method name -> RtMethod, overrides applied.
        self.vtable: dict[str, "RtMethod"] = (
            dict(superclass.vtable) if superclass else {})
        self.instance_fields: list[FieldDef] = (
            list(superclass.instance_fields) if superclass else [])
        self.field_defaults: dict[str, object] = (
            dict(superclass.field_defaults) if superclass else {})
        self.static_fields: dict[str, object] = {}
        self.statics: dict[str, object] = {}
        names = [name]
        cls = superclass
        while cls is not None:
            names.append(cls.name)
            cls = cls.superclass
        self._mro_names = frozenset(names)

    def is_subclass_of(self, other: "RtClass") -> bool:
        return other.name in self._mro_names

    def resolve_method(self, name: str) -> "RtMethod":
        """Static resolution: search this class then superclasses."""
        cls: RtClass | None = self
        while cls is not None:
            method = cls.methods.get(name)
            if method is not None:
                return method
            cls = cls.superclass
        raise LinkError(f"no method {self.name}.{name}")

    def find_static_owner(self, field: str) -> "RtClass":
        cls: RtClass | None = self
        while cls is not None:
            if field in cls.static_fields:
                return cls
            cls = cls.superclass
        raise LinkError(f"no static field {self.name}.{field}")

    def __repr__(self) -> str:
        return f"<class {self.name}>"


class RtMethod:
    """A linked method with resolved code and basic blocks."""

    __slots__ = ("rtclass", "name", "is_static", "param_types",
                 "return_type", "max_locals", "code", "exceptions",
                 "blocks", "entry_block", "block_at")

    def __init__(self, rtclass: RtClass, mdef: MethodDef) -> None:
        self.rtclass = rtclass
        self.name = mdef.name
        self.is_static = mdef.is_static
        self.param_types = list(mdef.param_types)
        self.return_type = mdef.return_type
        # Copy instructions so the symbolic ClassDef stays relinkable.
        self.code = [Instruction(i.op, i.a, i.b) for i in mdef.code]
        self.exceptions = [ExceptionEntry(e.start, e.end, e.handler,
                                          e.class_name)
                           for e in mdef.exceptions]
        self.max_locals = max(mdef.max_locals, self._scan_max_locals(),
                              self.arg_slots)
        self.blocks: list[BasicBlock] = []
        self.entry_block: BasicBlock | None = None
        self.block_at: dict[int, BasicBlock] = {}

    @property
    def arg_slots(self) -> int:
        return len(self.param_types) + (0 if self.is_static else 1)

    @property
    def qualified_name(self) -> str:
        return f"{self.rtclass.name}.{self.name}"

    def _scan_max_locals(self) -> int:
        highest = -1
        for instr in self.code:
            if instr.op in _LOCAL_OPS:
                highest = max(highest, instr.a)
        return highest + 1

    def find_handler(self, index: int, exc_class: RtClass,
                     classes: dict[str, RtClass]) -> BasicBlock | None:
        """Handler block for an exception thrown at `index`, or None."""
        for entry in self.exceptions:
            if not entry.start <= index < entry.end:
                continue
            if entry.class_name is not None:
                catch_cls = classes.get(entry.class_name)
                if catch_cls is None or not exc_class.is_subclass_of(catch_cls):
                    continue
            return self.block_at[entry.handler]
        return None

    def __repr__(self) -> str:
        return f"<method {self.qualified_name}>"


class Program:
    """A fully linked program ready for execution."""

    def __init__(self) -> None:
        self.classes: dict[str, RtClass] = {}
        self.methods: list[RtMethod] = []
        self.blocks: list[BasicBlock] = []
        self.entry: RtMethod | None = None

    @property
    def block_count(self) -> int:
        return len(self.blocks)

    def block(self, bid: int) -> BasicBlock:
        return self.blocks[bid]

    def method(self, qualified_name: str) -> RtMethod:
        cls_name, _, mname = qualified_name.partition(".")
        try:
            return self.classes[cls_name].resolve_method(mname)
        except KeyError:
            raise LinkError(f"no class {cls_name}") from None

    def reset_statics(self) -> None:
        """Restore every static field to its default value."""
        for cls in self.classes.values():
            for fdef in cls.static_fields.values():
                cls.statics[fdef.name] = default_value(fdef.type_name)

    def statics_snapshot(self) -> dict[str, dict[str, object]]:
        """The program's mutable state as {class: {field: value}}.

        Statics are the only program-owned state that survives a run
        (heap objects die with the machine), so this is the seam
        differential harnesses use to compare the *effects* of two
        executions, not just their return values.  Classes without
        static fields are omitted; iteration order is name-sorted so
        two snapshots compare structurally.
        """
        return {name: dict(sorted(cls.statics.items()))
                for name, cls in sorted(self.classes.items())
                if cls.statics}


def link(class_defs: list[ClassDef], entry: str = "Main.main") -> Program:
    """Link `class_defs` (plus builtins) into an executable Program."""
    return _Linker(class_defs).link(entry)


class _Linker:
    def __init__(self, class_defs: list[ClassDef]) -> None:
        self.defs: dict[str, ClassDef] = {}
        for cdef in builtin_classes() + list(class_defs):
            if cdef.name in self.defs:
                raise LinkError(f"duplicate class {cdef.name}")
            if cdef.name == NATIVE_CLASS:
                raise LinkError(f"class name {NATIVE_CLASS} is reserved")
            self.defs[cdef.name] = cdef
        self.program = Program()

    def link(self, entry: str) -> Program:
        for name in self.defs:
            self._link_class(name, [])
        self._split_all_blocks()
        self._resolve_operands()
        self._bind_entry(entry)
        self.program.reset_statics()
        return self.program

    # ------------------------------------------------------------------
    def _link_class(self, name: str, chain: list[str]) -> RtClass:
        existing = self.program.classes.get(name)
        if existing is not None:
            return existing
        if name in chain:
            raise LinkError(f"inheritance cycle through {name}")
        cdef = self.defs.get(name)
        if cdef is None:
            raise LinkError(f"unknown class {name}")
        superclass = None
        if cdef.super_name is not None:
            superclass = self._link_class(cdef.super_name, chain + [name])
        rtclass = RtClass(name, superclass)
        for fdef in cdef.fields:
            if fdef.is_static:
                rtclass.static_fields[fdef.name] = fdef
            else:
                rtclass.instance_fields.append(fdef)
                rtclass.field_defaults[fdef.name] = default_value(
                    fdef.type_name)
        for mdef in cdef.methods:
            if mdef.name in rtclass.methods:
                raise LinkError(f"duplicate method {name}.{mdef.name}")
            method = RtMethod(rtclass, mdef)
            rtclass.methods[mdef.name] = method
            if not mdef.is_static:
                rtclass.vtable[mdef.name] = method
            self.program.methods.append(method)
        self.program.classes[name] = rtclass
        return rtclass

    # ------------------------------------------------------------------
    def _split_all_blocks(self) -> None:
        program = self.program
        for method in program.methods:
            if not method.code:
                raise LinkError(
                    f"method {method.qualified_name} has no code")
            shadow = MethodDef(
                name=method.qualified_name,
                code=method.code,
                exceptions=method.exceptions,
            )
            blocks = split_blocks(shadow)
            for block in blocks:
                block.method = method
                block.bid = len(program.blocks)
                program.blocks.append(block)
                method.block_at[block.start] = block
            method.blocks = blocks
            method.entry_block = blocks[0]
            self._wire(method)

    def _wire(self, method: RtMethod) -> None:
        block_at = method.block_at
        for block in method.blocks:
            term = block.terminator
            if block.kind == KIND_COND:
                block.succ_target = block_at[term.a]
                block.succ_fall = block_at[block.end]
            elif block.kind == KIND_GOTO:
                block.succ_target = block_at[term.a]
            elif block.kind == KIND_SWITCH:
                _low, default = term.a
                block.switch_default = block_at[default]
                block.switch_blocks = tuple(block_at[t] for t in term.b)
            elif block.kind == KIND_INVOKE:
                block.continuation = block_at[block.end]
            elif block.kind == KIND_FALL:
                block.succ_fall = block_at[block.end]

    # ------------------------------------------------------------------
    def _resolve_operands(self) -> None:
        classes = self.program.classes
        for method in self.program.methods:
            for instr in method.code:
                op = instr.op
                if op is Op.NEW or op is Op.INSTANCEOF:
                    instr.a = self._class(instr.a, method)
                elif op is Op.GETSTATIC or op is Op.PUTSTATIC:
                    cls_name, field = instr.a
                    owner = self._class(cls_name, method)
                    instr.a = (owner.find_static_owner(field), field)
                elif op is Op.INVOKESTATIC:
                    cls_name, mname = instr.a
                    if cls_name == NATIVE_CLASS:
                        native = lookup_native(mname)
                        instr.a = native
                        instr.b = native.argc
                    else:
                        target = self._class(cls_name,
                                             method).resolve_method(mname)
                        if not target.is_static:
                            raise LinkError(
                                f"invokestatic of instance method "
                                f"{target.qualified_name}")
                        instr.a = target
                        instr.b = len(target.param_types)
                elif op is Op.INVOKESPECIAL:
                    cls_name, mname = instr.a
                    target = self._class(cls_name,
                                         method).resolve_method(mname)
                    if target.is_static:
                        raise LinkError(
                            f"invokespecial of static method "
                            f"{target.qualified_name}")
                    instr.a = target
                    instr.b = len(target.param_types)
                elif op is Op.INVOKEVIRTUAL:
                    if not isinstance(instr.b, int) or instr.b < 0:
                        raise LinkError(
                            f"{method.qualified_name}: invokevirtual "
                            f"{instr.a!r} missing argument count")

    def _class(self, name: str, method: RtMethod) -> RtClass:
        cls = self.program.classes.get(name)
        if cls is None:
            raise LinkError(
                f"{method.qualified_name}: unknown class {name!r}")
        return cls

    # ------------------------------------------------------------------
    def _bind_entry(self, entry: str) -> None:
        method = self.program.method(entry)
        if not method.is_static:
            raise LinkError(f"entry {entry} must be static")
        if method.param_types:
            raise LinkError(f"entry {entry} must take no arguments")
        self.program.entry = method

"""Symbolic class/method/field model — the output of the compiler and
assembler, and the input of the linker.

Everything here is name-based: method bodies reference classes, fields
and methods by name.  The linker (:mod:`repro.jvm.linker`) resolves these
into runtime objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .bytecode import Instruction

OBJECT_CLASS = "Object"


@dataclass(slots=True)
class ExceptionEntry:
    """A try/catch region: instruction range [start, end) handled at
    `handler`, catching throwables of class `class_name` (subclasses
    included); `class_name` of None means catch-all."""

    start: int
    end: int
    handler: int
    class_name: str | None = None


@dataclass(slots=True)
class FieldDef:
    name: str
    type_name: str = "int"
    is_static: bool = False


@dataclass(slots=True)
class MethodDef:
    """A method body.

    `param_types` excludes the receiver; instance methods receive `this`
    in local 0 and their declared parameters in locals 1..n.
    """

    name: str
    param_types: list[str] = field(default_factory=list)
    return_type: str = "void"
    max_locals: int = 0
    is_static: bool = False
    code: list[Instruction] = field(default_factory=list)
    exceptions: list[ExceptionEntry] = field(default_factory=list)

    @property
    def arg_slots(self) -> int:
        """Number of locals consumed by arguments (receiver included)."""
        return len(self.param_types) + (0 if self.is_static else 1)


@dataclass(slots=True)
class ClassDef:
    """A class: name, superclass name, fields and methods."""

    name: str
    super_name: str | None = OBJECT_CLASS
    fields: list[FieldDef] = field(default_factory=list)
    methods: list[MethodDef] = field(default_factory=list)

    def method(self, name: str) -> MethodDef:
        """Find a declared method by name (single dispatch-by-name model)."""
        for m in self.methods:
            if m.name == name:
                return m
        raise KeyError(f"{self.name}.{name}")

    def add_method(self, method: MethodDef) -> MethodDef:
        self.methods.append(method)
        return method

"""Heap objects: instances and arrays.

The VM heap is the Python heap; these classes only carry the metadata
the interpreter needs (class identity for virtual dispatch and
`instanceof`, element defaults for arrays).
"""

from __future__ import annotations

from .errors import VMRuntimeError
from .values import default_value


class ObjRef:
    """An instance of a linked runtime class."""

    __slots__ = ("rtclass", "fields")

    def __init__(self, rtclass) -> None:
        self.rtclass = rtclass
        # Field storage pre-populated with defaults for the full layout
        # (superclass fields included).
        self.fields = dict(rtclass.field_defaults)

    def get_field(self, name: str):
        try:
            return self.fields[name]
        except KeyError:
            raise VMRuntimeError(
                f"no field {name!r} on {self.rtclass.name}") from None

    def put_field(self, name: str, value) -> None:
        if name not in self.fields:
            raise VMRuntimeError(
                f"no field {name!r} on {self.rtclass.name}")
        self.fields[name] = value

    def __repr__(self) -> str:
        return f"<{self.rtclass.name} object>"


class ArrayRef:
    """A typed array ("int", "float", or a reference type name)."""

    __slots__ = ("elem_type", "data")

    def __init__(self, elem_type: str, length: int) -> None:
        if length < 0:
            raise VMRuntimeError(f"negative array size {length}")
        self.elem_type = elem_type
        self.data = [default_value(elem_type)] * length

    def __len__(self) -> int:
        return len(self.data)

    def check_index(self, index: int) -> int:
        if not 0 <= index < len(self.data):
            raise VMRuntimeError(
                f"array index {index} out of bounds for length "
                f"{len(self.data)}")
        return index

    def __repr__(self) -> str:
        return f"<{self.elem_type}[{len(self.data)}]>"

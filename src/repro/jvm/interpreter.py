"""The ordinary switch interpreter (Figure 1 of the paper).

Dispatches one *instruction* at a time with a program counter, exactly
like a classic bytecode interpreter.  It is implemented independently of
the threaded executor so the two can be differentially tested against
each other; its dispatch count equals the number of executed
instructions, which is the Figure-1 data point.
"""

from __future__ import annotations

from .bytecode import ICMP_CONDITIONS, Op
from .errors import (StepLimitExceeded, UncaughtVMException, VMRuntimeError)
from .heap import ArrayRef, ObjRef
from .intrinsics import NativeMethod
from .linker import Program, RtMethod
from .values import (fcmp, java_f2i, java_fdiv, java_idiv, java_irem,
                     java_ishl, java_ishr, java_iushr, wrap_int)

_BIN_INT = {
    Op.IADD: lambda a, b: wrap_int(a + b),
    Op.ISUB: lambda a, b: wrap_int(a - b),
    Op.IMUL: lambda a, b: wrap_int(a * b),
    Op.IDIV: java_idiv,
    Op.IREM: java_irem,
    Op.IAND: lambda a, b: a & b,
    Op.IOR: lambda a, b: a | b,
    Op.IXOR: lambda a, b: a ^ b,
    Op.ISHL: java_ishl,
    Op.ISHR: java_ishr,
    Op.IUSHR: java_iushr,
}

_BIN_FLOAT = {
    Op.FADD: lambda a, b: a + b,
    Op.FSUB: lambda a, b: a - b,
    Op.FMUL: lambda a, b: a * b,
}

_ICMP = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_UNARY_IF = {
    Op.IFEQ: lambda v: v == 0,
    Op.IFNE: lambda v: v != 0,
    Op.IFLT: lambda v: v < 0,
    Op.IFLE: lambda v: v <= 0,
    Op.IFGT: lambda v: v > 0,
    Op.IFGE: lambda v: v >= 0,
}

_LOADS = frozenset({Op.ILOAD, Op.FLOAD, Op.ALOAD})
_STORES = frozenset({Op.ISTORE, Op.FSTORE, Op.ASTORE})
_CONSTS = frozenset({Op.ICONST, Op.FCONST, Op.SCONST})
_ARRAY_LOADS = frozenset({Op.IALOAD, Op.FALOAD, Op.AALOAD})
_ARRAY_STORES = frozenset({Op.IASTORE, Op.FASTORE, Op.AASTORE})
_RETURNS_VALUE = frozenset({Op.IRETURN, Op.FRETURN, Op.ARETURN})

_NO_VALUE = object()


class _SFrame:
    __slots__ = ("method", "locals", "stack", "pc")

    def __init__(self, method: RtMethod, args: list) -> None:
        self.method = method
        self.locals = args + [None] * (method.max_locals - len(args))
        self.stack: list = []
        self.pc = 0


class SwitchInterpreter:
    """Instruction-at-a-time reference interpreter."""

    def __init__(self, program: Program,
                 max_instructions: int = 200_000_000) -> None:
        self.program = program
        self.max_instructions = max_instructions
        self.dispatch_count = 0
        self.output: list[str] = []
        self.instr_count = 0
        self.result = None

    # The natives expect a machine-like object exposing `output` and
    # `instr_count`; this interpreter satisfies the same protocol.

    def run(self, method: RtMethod | None = None) -> "SwitchInterpreter":
        self.program.reset_statics()
        method = method or self.program.entry
        if method is None:
            raise VMRuntimeError("program has no entry method")
        frames = [_SFrame(method, [])]
        classes = self.program.classes

        while frames:
            frame = frames[-1]
            instr = frame.method.code[frame.pc]
            op = instr.op
            stack = frame.stack
            self.instr_count += 1
            self.dispatch_count += 1
            if self.instr_count > self.max_instructions:
                raise StepLimitExceeded(
                    f"exceeded {self.max_instructions} instructions")
            next_pc = frame.pc + 1

            if op in _LOADS:
                stack.append(frame.locals[instr.a])
            elif op in _CONSTS:
                stack.append(instr.a)
            elif op in _STORES:
                frame.locals[instr.a] = stack.pop()
            elif op is Op.IINC:
                frame.locals[instr.a] = wrap_int(
                    frame.locals[instr.a] + instr.b)
            elif op in _BIN_INT:
                b = stack.pop()
                stack[-1] = _BIN_INT[op](stack[-1], b)
            elif op is Op.INEG:
                stack[-1] = wrap_int(-stack[-1])
            elif op in _BIN_FLOAT:
                b = stack.pop()
                stack[-1] = _BIN_FLOAT[op](stack[-1], b)
            elif op is Op.FDIV:
                b = stack.pop()
                stack[-1] = java_fdiv(stack[-1], b)
            elif op is Op.FNEG:
                stack[-1] = -stack[-1]
            elif op is Op.FCMPL:
                b = stack.pop()
                stack[-1] = fcmp(stack[-1], b, -1)
            elif op is Op.FCMPG:
                b = stack.pop()
                stack[-1] = fcmp(stack[-1], b, 1)
            elif op is Op.I2F:
                stack[-1] = float(stack[-1])
            elif op is Op.F2I:
                stack[-1] = java_f2i(stack[-1])
            elif op is Op.GOTO:
                next_pc = instr.a
            elif op in ICMP_CONDITIONS:
                b = stack.pop()
                a = stack.pop()
                if _ICMP[ICMP_CONDITIONS[op]](a, b):
                    next_pc = instr.a
            elif op in _UNARY_IF:
                if _UNARY_IF[op](stack.pop()):
                    next_pc = instr.a
            elif op is Op.IF_ACMPEQ:
                b = stack.pop()
                if stack.pop() is b:
                    next_pc = instr.a
            elif op is Op.IF_ACMPNE:
                b = stack.pop()
                if stack.pop() is not b:
                    next_pc = instr.a
            elif op is Op.IFNULL:
                if stack.pop() is None:
                    next_pc = instr.a
            elif op is Op.IFNONNULL:
                if stack.pop() is not None:
                    next_pc = instr.a
            elif op is Op.TABLESWITCH:
                value = stack.pop()
                low, default = instr.a
                offset = value - low
                if 0 <= offset < len(instr.b):
                    next_pc = instr.b[offset]
                else:
                    next_pc = default
            elif op is Op.DUP:
                stack.append(stack[-1])
            elif op is Op.DUP_X1:
                stack.insert(-2, stack[-1])
            elif op is Op.POP:
                stack.pop()
            elif op is Op.SWAP:
                stack[-1], stack[-2] = stack[-2], stack[-1]
            elif op is Op.ACONST_NULL:
                stack.append(None)
            elif op is Op.NEW:
                stack.append(ObjRef(instr.a))
            elif op is Op.NEWARRAY:
                stack.append(ArrayRef(instr.a, stack.pop()))
            elif op in _ARRAY_LOADS:
                i = stack.pop()
                arr = stack.pop()
                if arr is None:
                    raise VMRuntimeError("array load through null")
                stack.append(arr.data[arr.check_index(i)])
            elif op in _ARRAY_STORES:
                value = stack.pop()
                i = stack.pop()
                arr = stack.pop()
                if arr is None:
                    raise VMRuntimeError("array store through null")
                arr.data[arr.check_index(i)] = value
            elif op is Op.ARRAYLENGTH:
                arr = stack.pop()
                if arr is None:
                    raise VMRuntimeError("arraylength of null")
                stack.append(len(arr.data))
            elif op is Op.GETFIELD:
                obj = stack.pop()
                if obj is None:
                    raise VMRuntimeError(f"getfield {instr.a!r} on null")
                stack.append(obj.get_field(instr.a))
            elif op is Op.PUTFIELD:
                value = stack.pop()
                obj = stack.pop()
                if obj is None:
                    raise VMRuntimeError(f"putfield {instr.a!r} on null")
                obj.put_field(instr.a, value)
            elif op is Op.GETSTATIC:
                owner, field = instr.a
                stack.append(owner.statics[field])
            elif op is Op.PUTSTATIC:
                owner, field = instr.a
                owner.statics[field] = stack.pop()
            elif op is Op.INSTANCEOF:
                obj = stack.pop()
                stack.append(
                    1 if isinstance(obj, ObjRef)
                    and obj.rtclass.is_subclass_of(instr.a) else 0)
            elif op is Op.INVOKESTATIC:
                target = instr.a
                argc = instr.b
                args = stack[-argc:] if argc else []
                if argc:
                    del stack[-argc:]
                if type(target) is NativeMethod:
                    result = target.fn(self, args)
                    if target.returns_value:
                        stack.append(result)
                else:
                    frame.pc = next_pc
                    frames.append(_SFrame(target, args))
                    continue
            elif op is Op.INVOKEVIRTUAL or op is Op.INVOKESPECIAL:
                argc = instr.b
                args = stack[-argc:] if argc else []
                if argc:
                    del stack[-argc:]
                receiver = stack.pop()
                if receiver is None:
                    raise VMRuntimeError(
                        f"invoke {instr.a!r} on null receiver")
                if op is Op.INVOKEVIRTUAL:
                    target = receiver.rtclass.vtable.get(instr.a)
                    if target is None:
                        raise VMRuntimeError(
                            f"no virtual method {instr.a!r} on "
                            f"{receiver.rtclass.name}")
                else:
                    target = instr.a
                frame.pc = next_pc
                frames.append(_SFrame(target, [receiver] + args))
                continue
            elif op is Op.RETURN or op in _RETURNS_VALUE:
                value = stack.pop() if op in _RETURNS_VALUE else _NO_VALUE
                frames.pop()
                if not frames:
                    self.result = None if value is _NO_VALUE else value
                    return self
                if value is not _NO_VALUE:
                    frames[-1].stack.append(value)
                continue
            elif op is Op.ATHROW:
                exc = stack.pop()
                throwable = classes["Throwable"]
                if not isinstance(exc, ObjRef) or \
                        not exc.rtclass.is_subclass_of(throwable):
                    raise VMRuntimeError(
                        f"athrow of non-Throwable value {exc!r}")
                self._unwind(frames, exc, classes)
                continue
            elif op is Op.NOP:
                pass
            else:
                raise VMRuntimeError(f"unimplemented opcode {op.name}")

            frame.pc = next_pc
        return self

    @staticmethod
    def _unwind(frames: list[_SFrame], exc: ObjRef, classes) -> None:
        """Pop frames until a handler is found; sets pc to the handler."""
        while frames:
            frame = frames[-1]
            handler = frame.method.find_handler(frame.pc, exc.rtclass,
                                                classes)
            if handler is not None:
                frame.stack.clear()
                frame.stack.append(exc)
                frame.pc = handler.start
                return
            frames.pop()
            if frames:
                # Caller's pc already points after the invoke; the throw
                # site for handler matching is the invoke itself.
                frames[-1].pc -= 1
        raise UncaughtVMException(exc)

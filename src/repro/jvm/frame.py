"""Activation frames for the explicit (non-recursive) call stack.

The dispatch loops keep an explicit frame stack so that control
transfers between methods are ordinary block-to-block dispatches —
which is what lets traces cross method boundaries.
"""

from __future__ import annotations


class Frame:
    """One method activation: locals, operand stack and return point.

    `return_block` is the caller's continuation block (the block that
    starts right after the invoke instruction), or None for the entry
    frame.
    """

    __slots__ = ("method", "locals", "stack", "return_block")

    def __init__(self, method, args: list, return_block) -> None:
        self.method = method
        self.locals = args + [None] * (method.max_locals - len(args))
        self.stack: list = []
        self.return_block = return_block

    def __repr__(self) -> str:
        return (f"<frame {self.method.qualified_name} "
                f"stack={len(self.stack)}>")

"""Static bytecode verification over linked methods.

Performs an abstract interpretation of operand-stack *depth*:

- every instruction has a single well-defined stack depth on entry,
  consistent across all control-flow paths reaching it,
- depth never goes negative,
- returns see exactly the depth they pop,
- local indices are within `max_locals`,
- exception handlers start at depth 1 (the pushed throwable).

Virtual calls are checked against the closed world: every method with
the invoked name (in any class) must agree on whether it returns a
value, otherwise the stack depth would be path-dependent at runtime.
"""

from __future__ import annotations

from .bytecode import (INVOKE_OPS, Op, RETURN_OPS, STACK_EFFECT,
                       branch_targets, can_fall_through)
from .errors import VerifyError
from .intrinsics import NativeMethod
from .linker import Program, RtMethod

_LOCAL_OPS = frozenset({
    Op.ILOAD, Op.ISTORE, Op.FLOAD, Op.FSTORE, Op.ALOAD, Op.ASTORE, Op.IINC,
})


def verify_program(program: Program) -> None:
    """Verify every method in `program`; raises VerifyError on failure."""
    virtual_returns = _virtual_return_table(program)
    for method in program.methods:
        _verify_method(method, virtual_returns)


def _virtual_return_table(program: Program) -> dict[str, bool]:
    """name -> returns-a-value, consistent across all declaring classes."""
    table: dict[str, bool] = {}
    for method in program.methods:
        if method.is_static:
            continue
        returns = method.return_type != "void"
        if method.name in table and table[method.name] != returns:
            raise VerifyError(
                f"virtual method {method.name!r} declared both void and "
                f"value-returning; stack depth would be path-dependent")
        table[method.name] = returns
    return table


def _invoke_effect(instr, virtual_returns: dict[str, bool],
                   method: RtMethod) -> tuple[int, int]:
    op = instr.op
    if op is Op.INVOKESTATIC:
        target = instr.a
        if type(target) is NativeMethod:
            return target.argc, 1 if target.returns_value else 0
        return (len(target.param_types),
                0 if target.return_type == "void" else 1)
    if op is Op.INVOKESPECIAL:
        target = instr.a
        return (len(target.param_types) + 1,
                0 if target.return_type == "void" else 1)
    # invokevirtual: closed-world name lookup.
    name = instr.a
    if name not in virtual_returns:
        raise VerifyError(
            f"{method.qualified_name}: invokevirtual of unknown "
            f"method name {name!r}")
    return instr.b + 1, 1 if virtual_returns[name] else 0


def _verify_method(method: RtMethod,
                   virtual_returns: dict[str, bool]) -> None:
    code = method.code
    name = method.qualified_name
    depth_in: list[int | None] = [None] * len(code)
    worklist: list[int] = [0]
    depth_in[0] = 0
    for entry in method.exceptions:
        if not (0 <= entry.start < entry.end <= len(code)):
            raise VerifyError(f"{name}: bad exception range "
                              f"[{entry.start}, {entry.end})")
        _merge(depth_in, worklist, entry.handler, 1, name)

    while worklist:
        index = worklist.pop()
        depth = depth_in[index]
        instr = code[index]
        op = instr.op

        if op in _LOCAL_OPS:
            if not 0 <= instr.a < method.max_locals:
                raise VerifyError(
                    f"{name}@{index}: local index {instr.a} out of range "
                    f"(max_locals={method.max_locals})")

        if op in INVOKE_OPS:
            pops, pushes = _invoke_effect(instr, virtual_returns, method)
        else:
            try:
                pops, pushes = STACK_EFFECT[op]
            except KeyError:
                raise VerifyError(f"{name}@{index}: no stack effect for "
                                  f"{op.name}") from None

        if depth < pops:
            raise VerifyError(
                f"{name}@{index}: {op.name} pops {pops} but stack depth "
                f"is only {depth}")
        depth_out = depth - pops + pushes

        if op in RETURN_OPS:
            if depth_out != 0:
                raise VerifyError(
                    f"{name}@{index}: {op.name} leaves {depth_out} values "
                    f"on the operand stack")
            continue
        if op is Op.ATHROW:
            continue

        for target in branch_targets(instr):
            _merge(depth_in, worklist, target, depth_out, name)
        if can_fall_through(op):
            if index + 1 >= len(code):
                raise VerifyError(f"{name}@{index}: falls off end of code")
            _merge(depth_in, worklist, index + 1, depth_out, name)


def _merge(depth_in: list, worklist: list[int], target: int,
           depth: int, name: str) -> None:
    if not 0 <= target < len(depth_in):
        raise VerifyError(f"{name}: jump target {target} out of range")
    known = depth_in[target]
    if known is None:
        depth_in[target] = depth
        worklist.append(target)
    elif known != depth:
        raise VerifyError(
            f"{name}@{target}: inconsistent stack depth at join "
            f"({known} vs {depth})")

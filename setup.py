"""Setup shim: enables `python setup.py develop` on offline machines
where the `wheel` package (needed by PEP 517 editable installs) is
unavailable.  Configuration lives in pyproject.toml."""
from setuptools import setup

setup()

"""Compare the paper's BCG trace cache against Dynamo, rePLay and
Whaley-style selection on the same workload (paper Section 2 / 3).

Run:  python examples/compare_baselines.py [workload] [size]
"""

import sys

from repro.harness import run_baseline, run_experiment
from repro.metrics.report import Table


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "javacx"
    size = sys.argv[2] if len(sys.argv) > 2 else "small"

    table = Table(
        f"Hot-code selection schemes on {workload} ({size})",
        ["scheme", "coverage", "completion", "avg trace len",
         "dispatch reduction", "notes"],
        formats=["", ".1%", ".1%", ".1f", ".1%", ""])

    stats = run_experiment(workload, size).stats
    table.add_row("bcg (this paper)", stats.coverage,
                  stats.completion_rate, stats.average_trace_length,
                  stats.dispatch_reduction,
                  f"{stats.traces_in_cache} traces, "
                  f"{stats.signals} signals")

    dynamo, info = run_baseline(workload, "dynamo", size)
    table.add_row("dynamo (NET)", dynamo.coverage,
                  dynamo.completion_rate, dynamo.average_trace_length,
                  dynamo.dispatch_reduction,
                  f"{info['traces_created']} traces, "
                  f"{info['flushes']} flushes")

    replay, info = run_baseline(workload, "replay", size)
    table.add_row("replay (frames)", replay.coverage,
                  replay.completion_rate, replay.average_trace_length,
                  replay.dispatch_reduction,
                  f"{info['promotions']} assertions, "
                  f"{info['rollbacks']} rollbacks")

    whaley, info = run_baseline(workload, "whaley", size)
    table.add_row("whaley (methods)", info["optimized_coverage"],
                  None, None, 0.0,
                  f"{info['optimized_methods']} optimized methods")

    print(table.render())
    print(
        "\npaper's argument: Dynamo's counters are cheap but its traces "
        "often exit early;\nrePLay's assertions complete reliably but "
        "need hardware-depth history;\nthe branch correlation graph "
        "gets rePLay-like completion at software cost.")


if __name__ == "__main__":
    main()

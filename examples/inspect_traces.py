"""Inspect the branch correlation graph and the traces it produces.

Runs the javac-analog workload (the branchiest one), then dumps:
- the hottest BCG nodes with their states and correlation tables,
- the hottest traces, their expected vs. observed completion rates,
- a disassembly excerpt showing how trace blocks map back to bytecode.

Run:  python examples/inspect_traces.py [workload] [size]
"""

import sys

from repro import BranchState, TraceCacheConfig, load_workload, run_traced
from repro.jvm import disassemble_method


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "javacx"
    size = sys.argv[2] if len(sys.argv) > 2 else "tiny"
    program = load_workload(workload, size)
    result = run_traced(program, TraceCacheConfig())

    print(f"=== {workload} ({size}): "
          f"{result.stats.instr_total:,} instructions, "
          f"{len(result.profiler.bcg)} branch nodes, "
          f"{len(result.cache)} traces ===\n")

    print("--- hottest branch correlation nodes ---")
    nodes = sorted(result.profiler.bcg.nodes.values(),
                   key=lambda n: n.exec_count, reverse=True)
    for node in nodes[:12]:
        state, best = node.summary
        correlations = ", ".join(
            f"->{z} p={node.edge_probability(z):.3f}"
            for z, _e in sorted(node.edges.items(),
                                key=lambda kv: -kv[1].weight)[:3])
        anchored = " [anchors a trace]" if node.trace else ""
        print(f"  branch {node.key}: executed {node.exec_count:>7,}  "
              f"{state.name:<13s} {correlations}{anchored}")

    print("\n--- hottest traces (expected vs. observed completion) ---")
    for trace in result.cache.hottest(8):
        blocks = " -> ".join(str(b.bid) for b in trace.blocks)
        print(f"  [{blocks}]")
        print(f"     entries={trace.entries:,}  expected completion="
              f"{trace.expected_completion:.3f}  observed="
              f"{trace.completion_rate:.3f}")

    hottest = result.cache.hottest(1)
    if hottest:
        method = hottest[0].blocks[0].method
        print(f"\n--- bytecode of {method.qualified_name} "
              f"(home of the hottest trace) ---")
        print(disassemble_method(method))

    # Summarize the state distribution of the whole graph.
    counts = {state: 0 for state in BranchState}
    for node in result.profiler.bcg.nodes.values():
        counts[node.summary[0]] += 1
    print("\n--- branch state distribution ---")
    for state, count in counts.items():
        print(f"  {state.name:<14s} {count}")


if __name__ == "__main__":
    main()

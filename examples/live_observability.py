"""Live observability: watch the trace cache work, export artifacts.

Runs a branchy program under the trace-dispatching VM with the full
observability stack attached:

- a live subscriber printing trace-cache mutations as they happen,
- a JSONL event stream (``obs_events.jsonl``),
- a Chrome trace-event file (``obs_trace.json`` — open it in
  chrome://tracing or https://ui.perfetto.dev),
- periodic stable-schema snapshots.

Run:  python examples/live_observability.py
"""

from repro import VM, Observability

SOURCE = """
class Main {
    static int work(int x) {
        if ((x & 7) == 0) { return x * 3; }
        return x + 1;
    }

    static int main() {
        int total = 0;
        for (int outer = 0; outer < 300; outer = outer + 1) {
            for (int i = 0; i < 60; i = i + 1) {
                total = (total + work(i)) & 1048575;
            }
        }
        return total;
    }
}
"""


def main() -> None:
    obs = Observability(events_path="obs_events.jsonl",
                        chrome_trace_path="obs_trace.json",
                        snapshot_every=5_000)

    # A live subscriber: print cache mutations as they happen.
    def narrate(event):
        print(f"  [{event.seq:3d}] {event.kind:24s} {event.data}")
    obs.bus.subscribe(narrate, categories=["cache"])

    print("trace-cache mutations, live:")
    with VM(SOURCE, obs=obs, start_state_delay=64,
            optimize_traces=True, compile_backend="py") as vm:
        result = vm.run()

        print()
        print(f"program result : {result.value}")
        print(f"events emitted : {obs.bus.emitted} "
              f"({obs.bus.suppressed} suppressed unwatched)")
        print(f"snapshots taken: {obs.snapshots_taken}")

        snap = vm.snapshot()
        print(f"final snapshot : {snap['cache']['traces']} traces, "
              f"{snap['codegen']['traces_compiled']} compiled, "
              f"{snap['bcg']['nodes']} BCG nodes")

        timers = obs.timers
        print(f"phase seconds  : "
              f"construct={timers.seconds('construct') * 1000:.2f}ms, "
              f"codegen={timers.seconds('codegen') * 1000:.2f}ms, "
              f"dispatch={timers.dispatch_seconds() * 1000:.1f}ms")

    print()
    print("wrote obs_events.jsonl (JSONL event stream)")
    print("wrote obs_trace.json   (load in chrome://tracing / Perfetto)")


if __name__ == "__main__":
    main()

"""Tour of the mini-Java compiler substrate: source -> tokens -> AST ->
bytecode -> basic blocks -> execution under all three dispatch models.

Run:  python examples/minijava_compiler.py
"""

from repro import TraceCacheConfig, compile_source, run_traced
from repro.jvm import (SwitchInterpreter, ThreadedInterpreter,
                       disassemble_method, program_summary)
from repro.lang import parse, tokenize

SOURCE = """
class Accumulator {
    int total;

    void add(int value) {
        if (value > 0) { total = total + value; }
        else { total = total - value; }
    }
}

class Main {
    static int main() {
        Accumulator acc = new Accumulator();
        for (int i = -20; i < 20; i = i + 1) {
            acc.add(i * 3);
        }
        return acc.total;
    }
}
"""


def main() -> None:
    print("=== tokens (first 16) ===")
    for token in tokenize(SOURCE)[:16]:
        print(f"  {token.kind:<7s} {token.text!r}")

    unit = parse(SOURCE)
    print("\n=== AST classes ===")
    for cls in unit.classes:
        methods = ", ".join(m.name for m in cls.methods)
        fields = ", ".join(f.name for f in cls.fields)
        print(f"  class {cls.name}: fields [{fields}] "
              f"methods [{methods}]")

    program = compile_source(SOURCE)
    print(f"\n=== linked program: {program_summary(program)} ===")
    print("\n=== bytecode of Accumulator.add ===")
    print(disassemble_method(program.method("Accumulator.add")))

    print("\n=== three execution models on the same program ===")
    switch = SwitchInterpreter(program)
    switch.run()
    print(f"  Figure 1 (per instruction): result {switch.result}, "
          f"{switch.dispatch_count:,} dispatches")

    threaded = ThreadedInterpreter(program)
    machine = threaded.run()
    print(f"  Figure 2 (per block)      : result {machine.result}, "
          f"{threaded.dispatch_count:,} dispatches")

    traced = run_traced(program, TraceCacheConfig(start_state_delay=4,
                                                  decay_period=16))
    print(f"  trace cache (this paper)  : result {traced.value}, "
          f"{traced.stats.total_dispatches:,} dispatches "
          f"({traced.stats.trace_dispatches:,} of them whole traces)")


if __name__ == "__main__":
    main()

"""Evaluate your *own* program under the full harness.

Shows the workflow a downstream user follows: write mini-Java (or load
a .jasm file), run it under all three dispatch models, sweep the
paper's parameters, and export the branch correlation graph.

Run:  python examples/custom_workload.py
"""

from repro import TraceCacheConfig, compile_source, run_traced
from repro.jvm import SwitchInterpreter, ThreadedInterpreter
from repro.metrics import Table, bcg_to_dot
from repro.metrics.calibration import calibration_report

# A queue-based BFS over a grid — a workload shape (pointer chasing +
# data-dependent branching) not in the paper's suite.
SOURCE = """
class Queue {
    int[] data;
    int head;
    int tail;

    Queue(int capacity) { data = new int[capacity]; }

    boolean isEmpty() { return head == tail; }
    void push(int v) { data[tail] = v; tail++; }
    int pop() { int v = data[head]; head++; return v; }
}

class Main {
    static int main() {
        int w = 31;
        int h = 31;
        int[] dist = new int[w * h];
        boolean[] wall = new boolean[w * h];
        for (int i = 0; i < w * h; i++) {
            dist[i] = -1;
            wall[i] = ((i * 2654435761) >>> 28) < 5;   // ~31% walls
        }
        wall[0] = false;
        Queue queue = new Queue(w * h * 4);
        queue.push(0);
        dist[0] = 0;
        int sum = 0;
        while (!queue.isEmpty()) {
            int cell = queue.pop();
            int x = cell % w;
            int y = cell / w;
            int d = dist[cell];
            sum = (sum + d) & 1048575;
            if (x + 1 < w) { visit(dist, wall, queue, cell + 1, d); }
            if (x > 0)     { visit(dist, wall, queue, cell - 1, d); }
            if (y + 1 < h) { visit(dist, wall, queue, cell + w, d); }
            if (y > 0)     { visit(dist, wall, queue, cell - w, d); }
        }
        return sum;
    }

    static void visit(int[] dist, boolean[] wall, Queue queue,
                      int cell, int d) {
        if (!wall[cell] && dist[cell] < 0) {
            dist[cell] = d + 1;
            queue.push(cell);
        }
    }
}
"""


def main() -> None:
    program = compile_source(SOURCE)

    switch = SwitchInterpreter(program)
    switch.run()
    threaded = ThreadedInterpreter(program)
    threaded.run()
    print(f"result {switch.result}: "
          f"{switch.dispatch_count:,} instruction dispatches, "
          f"{threaded.dispatch_count:,} block dispatches")

    table = Table("BFS workload: threshold sweep",
                  ["threshold", "len", "coverage", "completion",
                   "chain rate"],
                  formats=["", ".1f", ".1%", ".1%", ".1%"])
    for threshold in (1.0, 0.97, 0.90):
        stats = run_traced(program, TraceCacheConfig(
            threshold=threshold, start_state_delay=16)).stats
        table.add_row(f"{threshold:.0%}", stats.average_trace_length,
                      stats.coverage, stats.completion_rate,
                      stats.chain_rate)
    print()
    print(table.render())

    result = run_traced(program, TraceCacheConfig(start_state_delay=16))
    print()
    print(calibration_report(result.cache.traces.values())
          .to_table().render())

    dot = bcg_to_dot(result.profiler.bcg, max_nodes=12)
    print(f"\nGraphviz export: {len(dot.splitlines())} DOT lines "
          f"(pipe `python -m repro dump ... --format dot` into `dot "
          f"-Tsvg`)")


if __name__ == "__main__":
    main()

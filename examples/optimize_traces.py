"""Future-work walkthrough: optimizing and executing traces.

Shows the full pipeline the paper's conclusion sketches: a hot trace is
flattened to a guarded linear IR, peephole passes shrink it, and the
optimized form executes with identical semantics.

Run:  python examples/optimize_traces.py
"""

from repro import TraceCacheConfig, compile_source, run_traced
from repro.opt import TraceOptimizer, flatten, optimize
from repro.opt.ir import K_SIMPLE

SOURCE = """
class Main {
    static int main() {
        int total = 0;
        for (int i = 0; i < 4000; i = i + 1) {
            int x = i * 2 + 1;
            total = (total + x) & 65535;
        }
        return total;
    }
}
"""


def describe_instr(instr) -> str:
    if instr.kind == K_SIMPLE:
        parts = [instr.op.name.lower()]
        if instr.a is not None:
            parts.append(str(instr.a))
        if instr.b is not None:
            parts.append(str(instr.b))
        text = " ".join(parts)
    else:
        text = f"<{instr.kind}>"
    weight = f"  (represents {instr.weight})" if instr.weight > 1 else ""
    return f"  {text}{weight}"


def main() -> None:
    program = compile_source(SOURCE)

    # First run without optimization to let the trace cache form.
    plain = run_traced(program, TraceCacheConfig(start_state_delay=8,
                                                 decay_period=32))
    trace = plain.cache.hottest(1)[0]
    print(f"hottest trace: {len(trace.blocks)} blocks, "
          f"{trace.entries:,} entries\n")

    raw = flatten(trace)
    print(f"--- flattened IR ({raw.optimized_instr_count} instructions, "
          f"{raw.original_instr_count} originals; internal gotos "
          f"already gone) ---")
    for instr in raw.instrs:
        print(describe_instr(instr))

    tuned = optimize(flatten(trace))
    print(f"\n--- after passes ({tuned.optimized_instr_count} "
          f"instructions; {tuned.savings} originals eliminated) ---")
    for instr in tuned.instrs:
        print(describe_instr(instr))

    # Now run the whole program with optimized trace dispatch.
    optimized = run_traced(program, TraceCacheConfig(
        start_state_delay=8, decay_period=32, optimize_traces=True))
    assert optimized.value == plain.value
    stats = optimized.stats
    print(f"\n--- optimized run ---")
    print(f"result identical          : {optimized.value}")
    print(f"traces compiled           : {stats.traces_compiled}")
    print(f"original instrs eliminated: "
          f"{stats.opt_dynamic_savings:,} "
          f"({stats.opt_dynamic_savings / stats.instr_total:.1%} of the "
          f"instruction stream)")


if __name__ == "__main__":
    main()

"""Quickstart: compile a mini-Java program and run it under the
trace-dispatching VM, then print the paper's five dependent values.

Run:  python examples/quickstart.py
"""

from repro import VM

SOURCE = """
class Main {
    static int work(int x) {
        if ((x & 7) == 0) { return x * 3; }
        return x + 1;
    }

    static int main() {
        int total = 0;
        for (int outer = 0; outer < 300; outer = outer + 1) {
            for (int i = 0; i < 60; i = i + 1) {
                total = (total + work(i)) & 1048575;
            }
        }
        return total;
    }
}
"""


def main() -> None:
    vm = VM(SOURCE, threshold=0.97, start_state_delay=64)
    result = vm.run()
    stats = result.stats

    print(f"program result            : {result.value}")
    print(f"instructions executed     : {stats.instr_total:,}")
    print(f"dispatches (plain VM)     : {stats.baseline_dispatches:,}")
    print(f"dispatches (trace VM)     : {stats.total_dispatches:,} "
          f"({stats.dispatch_reduction:.1%} fewer)")
    print()
    print("The paper's five dependent values (Section 5.2):")
    print(f"  average trace length    : "
          f"{stats.average_trace_length:.1f} blocks")
    print(f"  stream coverage         : {stats.coverage:.1%}")
    print(f"  trace completion rate   : {stats.completion_rate:.1%}")
    print(f"  dispatches per signal   : "
          f"{stats.dispatches_per_signal:,.0f}")
    print(f"  dispatches / trace event: "
          f"{stats.dispatches_per_trace_event:,.0f}")
    print()
    print(f"traces in cache: {len(result.cache)}  "
          f"(constructed {stats.traces_constructed}, "
          f"invalidated {stats.traces_invalidated})")
    print("hottest traces:")
    for trace in result.cache.hottest(5):
        print(f"  {trace.describe()}")


if __name__ == "__main__":
    main()

"""Sweep the completion threshold on one workload (paper Section 5.3).

Reproduces one row of Tables I-IV for a single workload at each
threshold the paper tried, showing the trade-off the paper describes: a
low threshold gives longer traces but more signals; a high threshold
gives predictable traces.

Run:  python examples/threshold_sweep.py [workload] [size]
"""

import sys

from repro.harness import run_experiment
from repro.metrics.report import Table

THRESHOLDS = (1.0, 0.99, 0.98, 0.97, 0.95, 0.90, 0.80)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "compressx"
    size = sys.argv[2] if len(sys.argv) > 2 else "small"

    table = Table(
        f"Threshold sweep: {workload} ({size})",
        ["threshold", "trace len", "coverage", "completion",
         "k-disp/signal", "k-disp/event", "traces", "replaced"],
        formats=["", ".1f", ".1%", ".1%", ".1f", ".1f", "", ""])
    for threshold in THRESHOLDS:
        stats = run_experiment(workload, size, threshold=threshold).stats
        table.add_row(
            f"{threshold:.0%}",
            stats.average_trace_length,
            stats.coverage,
            stats.completion_rate,
            stats.dispatches_per_signal / 1000,
            stats.dispatches_per_trace_event / 1000,
            stats.traces_in_cache,
            stats.anchors_replaced,
        )
    print(table.render())
    print("\npaper: thresholds of 97-99% balance trace length, coverage "
          "and completion;\n100% only chains unique branches; low "
          "thresholds trade completion for length.")


if __name__ == "__main__":
    main()
